"""Extension: 3GOL under DSLAM oversubscription.

§2.1 notes that "wired networks tend to be oversubscribed at the access";
the paper never evaluates that regime directly. This experiment does: K
households hang off one DSLAM whose backhaul is oversubscribed, all
streaming at the evening peak, and one of them runs 3GOL. As contention
grows, the wired share per home shrinks while the cellular paths are
unaffected — so 3GOL's relative benefit *grows* with oversubscription,
strengthening the paper's case exactly where DSL hurts most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.fluid import Flow
from repro.netsim.link import Link
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import MB, mbps, rate_to_mbps
from repro.web.hls import make_bipbop_video

LOCATION = LocationProfile(
    name="dslam-home",
    description="Oversubscription testbed (3 Mbps ADSL, evening)",
    adsl_down_bps=mbps(3.0),
    adsl_up_bps=mbps(0.4),
    signal_dbm=-84.0,
    peak_utilization=0.55,
    measurement_hour=21.0,
)

#: Number of concurrently-streaming neighbour households.
DEFAULT_NEIGHBOURS: Tuple[int, ...] = (0, 4, 8, 16)
#: DSLAM backhaul serving this neighbourhood segment.
BACKHAUL_BPS = mbps(12.0)


@dataclass(frozen=True)
class ContentionCell:
    """Download times at one contention level."""

    adsl_alone_s: float
    onload_s: float

    @property
    def speedup(self) -> float:
        """ADSL-alone over 3GOL download time."""
        return self.adsl_alone_s / self.onload_s


@dataclass(frozen=True)
class DslamContentionResult:
    """Cells per neighbour count."""

    cells: Dict[int, ContentionCell]
    backhaul_bps: float

    def speedup_grows_with_contention(self) -> bool:
        """The extension's claim."""
        counts = sorted(self.cells)
        speedups = [self.cells[k].speedup for k in counts]
        return speedups[-1] > speedups[0]

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One row per contention level."""
        rows = [
            (
                neighbours,
                fmt(cell.adsl_alone_s, 1),
                fmt(cell.onload_s, 1),
                f"x{cell.speedup:.1f}",
            )
            for neighbours, cell in sorted(self.cells.items())
        ]
        return render_table(
            ["neighbours", "ADSL (s)", "3GOL (s)", "speedup"],
            rows,
            title=(
                "Extension — Q4 download under DSLAM oversubscription "
                f"({rate_to_mbps(self.backhaul_bps):.0f} Mbps backhaul, "
                f"2 phones)"
            ),
        )


def _background_traffic(
    household: Household, backhaul: Link, neighbours: int, seed: int
) -> None:
    """Neighbour homes streaming through the shared backhaul.

    Each neighbour is a long-lived flow over its own (identical) ADSL
    line plus the shared backhaul — enough to model the contention
    without simulating whole households.
    """
    for i in range(neighbours):
        line = Link(f"neighbour{i}-adsl", LOCATION.adsl_down_bps)
        household.network.add_flow(
            Flow(
                10_000 * MB,  # effectively endless for the experiment
                [household.origin_down, backhaul, line],
                label=f"neighbour-{i}",
            )
        )


@experiment(
    "ext-dslam",
    title="Extension — DSLAM oversubscription",
    description="extension: DSLAM oversubscription",
    paper_ref="§2.1",
    claims=(
        "Paper (§2.1, unevaluated): wired access is oversubscribed.\n"
        "Measured: with 16 streaming neighbours on a 12 Mbps DSLAM "
        "backhaul, the 3GOL speedup grows from ~x2 to ~x6 — the "
        "benefit is largest exactly where DSL hurts most."
    ),
    bench_params={"seeds": (0, 1, 2)},
    quick_params={"seeds": (0,)},
    order=210,
)
def run(
    neighbour_counts: Sequence[int] = DEFAULT_NEIGHBOURS,
    seeds: Sequence[int] = (0, 1, 2),
    quality: str = "Q4",
) -> DslamContentionResult:
    """Measure the 3GOL speedup at each contention level."""
    video = make_bipbop_video()
    playlist = video.playlist(quality)
    items = [
        TransferItem(s.uri, s.size_bytes, {"index": s.index})
        for s in playlist.segments
    ]
    cells: Dict[int, ContentionCell] = {}
    for neighbours in neighbour_counts:
        adsl_stats, onload_stats = RunningStats(), RunningStats()
        for seed in seeds:
            for use_3gol in (False, True):
                household = Household(
                    LOCATION, HouseholdConfig(n_phones=2, seed=seed)
                )
                backhaul = Link("dslam-backhaul", BACKHAUL_BPS)
                _background_traffic(household, backhaul, neighbours, seed)
                # Thread the household's own wired path through the
                # shared backhaul too.
                wired = household.adsl_down_path()
                contended = type(wired)(
                    wired.name,
                    (household.origin_down, backhaul)
                    + tuple(
                        link
                        for link in wired.links
                        if link is not household.origin_down
                    ),
                    rtt=wired.rtt,
                )
                paths: List = [contended]
                if use_3gol:
                    paths += [
                        household.phone_down_path(p)
                        for p in household.phones
                    ]
                runner = TransactionRunner(
                    household.network, paths, make_policy("GRD")
                )
                result = runner.run(
                    Transaction(items, name=f"dslam-{neighbours}-{seed}"),
                    until=household.network.time + 3600.0,
                )
                if use_3gol:
                    onload_stats.add(result.total_time)
                else:
                    adsl_stats.add(result.total_time)
        cells[neighbours] = ContentionCell(
            adsl_alone_s=adsl_stats.mean, onload_s=onload_stats.mean
        )
    return DslamContentionResult(cells=cells, backhaul_bps=BACKHAUL_BPS)
