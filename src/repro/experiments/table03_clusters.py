"""Table 3 — per-device throughput of a base station by cluster size.

The paper reports average, maximum and standard deviation of the
throughput one base station provides *per device* for groupings of 1, 3
and 5 devices, pooling the whole campaign: the per-device rate decreases
with the group size in both directions (shared-channel contention), e.g.
1.61/1.33/1.16 Mbps mean downlink and 1.09/0.90/0.65 Mbps mean uplink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.formatting import fmt_mbps, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import MEASUREMENT_LOCATIONS, LocationProfile
from repro.traces.handsets import measure_cluster_throughput
from repro.util.stats import RunningStats

DEFAULT_CLUSTER_SIZES: Tuple[int, ...] = (1, 3, 5)


@dataclass(frozen=True)
class ClusterStats:
    """One cell of the table: per-device throughput statistics."""

    mean_bps: float
    max_bps: float
    sd_bps: float
    n: int


@dataclass(frozen=True)
class ClusterTableResult:
    """Statistics per (cluster size, direction)."""

    cluster_sizes: Tuple[int, ...]
    stats: Dict[Tuple[int, str], ClusterStats]

    def per_device(self, size: int, direction: str) -> ClusterStats:
        """One table cell."""
        return self.stats[(size, direction)]

    def is_decreasing(self, direction: str) -> bool:
        """Paper claim: per-device mean falls as the cluster grows."""
        means = [
            self.stats[(size, direction)].mean_bps
            for size in self.cluster_sizes
        ]
        return all(a > b for a, b in zip(means, means[1:]))

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The table in the paper's layout."""
        rows = []
        for size in self.cluster_sizes:
            up = self.stats[(size, "up")]
            down = self.stats[(size, "down")]
            rows.append(
                [
                    size,
                    f"{fmt_mbps(up.mean_bps)}/{fmt_mbps(up.max_bps)}/{fmt_mbps(up.sd_bps)}",
                    f"{fmt_mbps(down.mean_bps)}/{fmt_mbps(down.max_bps)}/{fmt_mbps(down.sd_bps)}",
                ]
            )
        return render_table(
            ["cluster", "uplink mean/max/sd (Mbps)", "downlink mean/max/sd (Mbps)"],
            rows,
            title="Table 3 — per-device throughput of an HSPA station",
        )


@experiment(
    "table03",
    title="Table 3 — per-device throughput by cluster size",
    description="per-device rate by cluster size (Table 3)",
    paper_ref="Table 3",
    claims=(
        "Paper: mean per-device rate falls with the cluster — down "
        "1.61/1.33/1.16 Mbps, up 1.09/0.90/0.65 Mbps for 1/3/5 "
        "devices.\n"
        "Measured: strictly decreasing in both directions, means "
        "within ~30% of the paper's."
    ),
    bench_params={"days": 2},
    quick_params={"days": 1},
    order=60,
)
def run(
    locations: Sequence[LocationProfile] = MEASUREMENT_LOCATIONS[:6],
    cluster_sizes: Sequence[int] = DEFAULT_CLUSTER_SIZES,
    hours: Sequence[float] = (2.0, 10.0, 18.0),
    days: int = 2,
) -> ClusterTableResult:
    """Pool per-device samples across locations, hours and days."""
    stats: Dict[Tuple[int, str], ClusterStats] = {}
    for size in cluster_sizes:
        for direction in ("down", "up"):
            pooled = RunningStats()
            for location in locations:
                for hour in hours:
                    for day in range(days):
                        samples = measure_cluster_throughput(
                            location,
                            size,
                            direction=direction,
                            hour=hour,
                            repetitions=2,
                            seed=day * 17 + int(hour),
                        )
                        for sample in samples:
                            pooled.extend(sample.per_device_bps)
            stats[(size, direction)] = ClusterStats(
                mean_bps=pooled.mean,
                max_bps=pooled.maximum,
                sd_bps=pooled.stdev,
                n=pooled.count,
            )
    return ClusterTableResult(
        cluster_sizes=tuple(cluster_sizes), stats=stats
    )
