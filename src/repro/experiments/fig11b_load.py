"""Fig. 11 (b) — load 3GOL puts on the cellular network (§6).

Over the DSLAM trace (a population matching two cell towers' coverage,
§2.1), the onloaded traffic is computed in 5-minute bins for two regimes:
budgeted (first eligible video per user-day, at most 40 MB) and unbudgeted
(full cellular share of every video). Paper claims: without caps the 3G
network "will be guaranteed to be overloaded"; within caps the additional
load is reasonable (the budgeted curve stays below the 2 × 40 Mbps
backhaul line); the average budgeted user onloads 29.78 MB/day.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.load import OnloadLoadSeries, onloaded_load_series
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.dslam import generate_dslam_trace
from repro.util.units import bits_to_bytes, bytes_to_megabytes, rate_to_mbps


@dataclass(frozen=True)
class OnloadLoadResult:
    """The two load series plus summary claims."""

    series: OnloadLoadSeries
    mean_onload_mb_per_user: float
    n_video_users: int

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Hourly maxima of both regimes against the capacity line."""
        bins_per_hour = int(3600 / self.series.bin_seconds)
        rows = []
        for hour in range(24):
            lo = hour * bins_per_hour
            hi = lo + bins_per_hour
            rows.append(
                (
                    hour,
                    fmt(rate_to_mbps(max(self.series.budgeted_bps[lo:hi])), 1),
                    fmt(
                        rate_to_mbps(max(self.series.unbudgeted_bps[lo:hi])), 1
                    ),
                )
            )
        backhaul_mbps = rate_to_mbps(self.series.backhaul_bps)
        table = render_table(
            ["hour", "budgeted peak (Mbps)", "unbudgeted peak (Mbps)"],
            rows,
            title=(
                "Fig. 11b — onloaded cellular load "
                f"(backhaul capacity {backhaul_mbps:.0f} Mbps)"
            ),
        )
        claims = (
            "\nbudgeted peak: "
            f"{rate_to_mbps(self.series.budgeted_peak_bps):.1f} Mbps"
            f" | unbudgeted peak: "
            f"{rate_to_mbps(self.series.unbudgeted_peak_bps):.1f} Mbps"
            f"\nbudgeted bins over capacity: "
            f"{self.series.budgeted_overload_fraction():.1%}"
            f" | unbudgeted bins over capacity: "
            f"{self.series.unbudgeted_overload_fraction():.1%}"
            f"\nmean onload per user-day (budgeted): "
            f"{self.mean_onload_mb_per_user:.1f} MB (paper: 29.78 MB)"
        )
        return table + claims


@experiment(
    "fig11b",
    title="Fig. 11b — onloaded load vs backhaul",
    description="onloaded load vs backhaul (Fig. 11b)",
    paper_ref="Fig. 11b",
    claims=(
        "Paper: unbudgeted 3GOL overloads the 2x40 Mbps backhaul; "
        "budgeted stays reasonable; 29.78 MB/day mean onload.\n"
        "Measured: budgeted never exceeds capacity, unbudgeted peaks "
        "at ~2x capacity; 29.3 MB/day mean onload."
    ),
    bench_params={"n_subscribers": 2000, "seed": 0},
    quick_params={"n_subscribers": 300},
    order=140,
)
def run(n_subscribers: int = 2000, seed: int = 0) -> OnloadLoadResult:
    """Generate the trace and compute both load series."""
    trace = generate_dslam_trace(n_subscribers=n_subscribers, seed=seed)
    series = onloaded_load_series(trace)
    total_budgeted_bytes = float(
        bits_to_bytes(series.budgeted_bps * series.bin_seconds).sum()
    )
    n_video_users = len(trace.video_users)
    return OnloadLoadResult(
        series=series,
        mean_onload_mb_per_user=bytes_to_megabytes(
            total_budgeted_bytes / n_video_users
        ),
        n_video_users=n_video_users,
    )
