"""Fig. 6 — scheduler comparison on the 2 Mbps testbed (§5.1).

Setup, per the paper: an ADSL line at 2 Mbps down / 0.512 Mbps up, the
bipbop HLS video forced to 200 s at the original four qualities, 30
repetitions per configuration, one and two phones, run at night (1 a.m.)
to minimise fluctuations. Expected ordering of mean download time, for
every quality: ADSL alone ≫ MIN ≥ RR > GRD, with MIN hurt worst at the
higher qualities where its stale bandwidth estimates strand the most
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

#: The §5.1 testbed line. The quoted "2 Mbps" is the plan rate; effective
#: TCP goodput on an ATM-framed ADSL line with the player's sequential
#: request pattern is markedly lower (the paper's own ADSL-alone times
#: imply ~1 Mbps effective), modelled by the goodput-efficiency factor.
TESTBED_LOCATION = LocationProfile(
    name="testbed",
    description="Scheduler-comparison testbed (2 Mbps ADSL, night)",
    adsl_down_bps=mbps(2.0),
    adsl_up_bps=mbps(0.512),
    signal_dbm=-79.0,
    n_stations=2,
    peak_utilization=0.30,
    measurement_hour=1.0,
    adsl_goodput_efficiency=0.55,
)

QUALITIES: Tuple[str, ...] = ("Q1", "Q2", "Q3", "Q4")
SCHEDULERS: Tuple[str, ...] = ("MIN", "RR", "GRD")


@dataclass(frozen=True)
class SchedulerCell:
    """Mean and standard deviation of download time for one bar."""

    mean_s: float
    sd_s: float
    n: int


@dataclass(frozen=True)
class SchedulerComparisonResult:
    """Download times per (quality, scheduler, phone count)."""

    #: Keys: (quality, scheduler_name, n_phones); scheduler "ADSL" is the
    #: unassisted baseline (phone count 0 by construction).
    cells: Dict[Tuple[str, str, int], SchedulerCell]
    phone_counts: Tuple[int, ...]

    def time(self, quality: str, scheduler: str, n_phones: int = 1) -> float:
        """Mean download time of one bar."""
        key = (quality, scheduler, 0 if scheduler == "ADSL" else n_phones)
        return self.cells[key].mean_s

    def ordering_holds(self, quality: str, n_phones: int) -> bool:
        """GRD fastest, ADSL slowest, for one quality/phone count."""
        adsl = self.time(quality, "ADSL")
        grd = self.time(quality, "GRD", n_phones)
        rr = self.time(quality, "RR", n_phones)
        min_ = self.time(quality, "MIN", n_phones)
        return grd <= rr and grd <= min_ and max(rr, min_, grd) < adsl

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The figure as a table, one panel per phone count."""
        blocks = []
        for n_phones in self.phone_counts:
            rows = []
            for quality in QUALITIES:
                row = [quality, fmt(self.time(quality, "ADSL"), 1)]
                for scheduler in SCHEDULERS:
                    cell = self.cells[(quality, scheduler, n_phones)]
                    row.append(f"{cell.mean_s:.1f}±{cell.sd_s:.1f}")
                rows.append(row)
            blocks.append(
                render_table(
                    ["quality", "ADSL", "3GOL_MIN", "3GOL_RR", "3GOL_GRD"],
                    rows,
                    title=(
                        f"Fig. 6 — download time (s) of a 200 s HLS video, "
                        f"{n_phones} phone(s)"
                    ),
                )
            )
        return "\n\n".join(blocks)


@experiment(
    "fig06",
    title="Fig. 6 — scheduler comparison (2 Mbps testbed)",
    description="GRD vs RR vs MIN schedulers (Fig. 6)",
    paper_ref="§5.1, Fig. 6",
    claims=(
        "Paper: GRD best at every quality, then RR, MIN worst ('high "
        "variability ... results in poor estimates').\n"
        "Measured: GRD best everywhere and all schedulers beat ADSL; "
        "MIN degrades hardest at Q3/Q4 where its mis-estimates strand "
        "the most bytes (at Q1/Q2 MIN ties GRD rather than trailing "
        "RR — the one ordering deviation; our synthetic radio "
        "variability at night is evidently milder than theirs)."
    ),
    bench_params={"repetitions": 10},
    quick_params={"repetitions": 2},
    order=70,
)
def run(
    phone_counts: Sequence[int] = (1, 2),
    repetitions: int = 10,
    location: LocationProfile = TESTBED_LOCATION,
) -> SchedulerComparisonResult:
    """Run the comparison; ``repetitions`` seeds per configuration."""
    video = make_bipbop_video()
    cells: Dict[Tuple[str, str, int], SchedulerCell] = {}
    for quality in QUALITIES:
        playlist = video.playlist(quality)
        items = [
            TransferItem(s.uri, s.size_bytes, {"index": s.index})
            for s in playlist.segments
        ]
        # ADSL-alone baseline: the sequential player on the wired path.
        baseline = RunningStats()
        for seed in range(repetitions):
            household = Household(
                location, HouseholdConfig(n_phones=1, seed=seed)
            )
            runner = TransactionRunner(
                household.network,
                [household.adsl_down_path()],
                make_policy("GRD"),
            )
            baseline.add(runner.run(Transaction(items)).total_time)
        cells[(quality, "ADSL", 0)] = SchedulerCell(
            baseline.mean, baseline.stdev, baseline.count
        )
        for n_phones in phone_counts:
            for scheduler in SCHEDULERS:
                stats = RunningStats()
                for seed in range(repetitions):
                    household = Household(
                        location, HouseholdConfig(n_phones=n_phones, seed=seed)
                    )
                    runner = TransactionRunner(
                        household.network,
                        household.download_paths(),
                        make_policy(scheduler),
                    )
                    stats.add(runner.run(Transaction(items)).total_time)
                cells[(quality, scheduler, n_phones)] = SchedulerCell(
                    stats.mean, stats.stdev, stats.count
                )
    return SchedulerComparisonResult(
        cells=cells, phone_counts=tuple(phone_counts)
    )
