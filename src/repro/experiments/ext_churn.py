"""Extension: scheduler robustness under path churn.

The deployment sections (§3, §5) describe the failure environment —
phones walking out of Wi-Fi range, 3G radios dropping, permits revoked
mid-transfer — but the paper evaluates the schedulers only on stable
paths. This experiment closes that gap: the same video download runs
under increasing *churn* (seeded flap + radio-drop processes on every
phone path, ADSL always up) for all four policies, measuring

* **completion rate** — transactions finished before the cutoff;
* **goodput loss** — slowdown of the mean download time vs the calm run
  (churn 0) of the same policy;
* **duplicate-byte waste** — endgame duplication plus the partial
  transfers killed by faults, as a fraction of the payload;
* **fault events** — effective path-down transitions plus watchdog
  stalls the runner had to absorb.

Churn intensity is the expected number of flaps per minute per phone
path; each flap takes the path down for ~5 s, and an accompanying
Poisson radio-drop process (15·intensity drops/hour, 8 s reacquisition)
adds uncorrelated losses. All fault processes are pure functions of the
seed, so results are byte-identical across runs and ``--jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.resilience import bind_fault_schedule
from repro.core.scheduler import (
    RetryPolicy,
    TransactionRunner,
    attach_deadlines,
    make_policy,
)
from repro.core.scheduler.runner import TransactionResult
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.faults import FaultSchedule, PathFlapProcess, RadioDropProcess
from repro.netsim.path import NetworkPath
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

LOCATION = LocationProfile(
    name="churn-home",
    description="churn testbed (2 Mbps ADSL, night, 2 phones)",
    adsl_down_bps=mbps(2.0),
    adsl_up_bps=mbps(0.512),
    signal_dbm=-81.0,
    peak_utilization=0.35,
    measurement_hour=1.0,
    adsl_goodput_efficiency=0.55,
)

POLICIES = ("GRD", "RR", "MIN", "DLN")

#: Mean flap outage and the radio-drop side process, per unit intensity.
FLAP_DOWN_S = 5.0
RADIO_DROPS_PER_HOUR_PER_UNIT = 15.0
RADIO_OUTAGE_S = 8.0

#: Runner hardening used for every churn run.
STALL_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ChurnCell:
    """Aggregates for one (policy, intensity) combination."""

    policy: str
    #: Expected flaps per minute per phone path.
    intensity: float
    #: Fraction of seeds whose transaction finished before the cutoff.
    completion_rate: float
    #: Mean download time over the completed runs (s).
    mean_time_s: float
    #: ``mean_time_s`` relative to the same policy's calm (intensity-0) run.
    slowdown: float
    #: Wasted bytes (duplicates + fault-killed partials) / payload bytes.
    waste_fraction: float
    #: Mean path-fault + stall events absorbed per run.
    mean_fault_events: float


@dataclass(frozen=True)
class ChurnResult:
    """Scheduler robustness under increasing path churn."""

    cutoff_s: float
    cells: Tuple[ChurnCell, ...]

    def cell(self, policy: str, intensity: float) -> ChurnCell:
        """The aggregate for one (policy, intensity) pair."""
        for cell in self.cells:
            if cell.policy == policy and cell.intensity == intensity:
                return cell
        raise KeyError(f"no cell for ({policy!r}, {intensity!r})")

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The robustness table, grouped by policy."""
        rows = [
            (
                cell.policy,
                fmt(cell.intensity, 1),
                f"{cell.completion_rate:.0%}",
                fmt(cell.mean_time_s, 1),
                f"x{cell.slowdown:.2f}",
                f"{cell.waste_fraction:.1%}",
                fmt(cell.mean_fault_events, 1),
            )
            for cell in self.cells
        ]
        return render_table(
            [
                "policy",
                "flaps/min",
                "completed",
                "time (s)",
                "vs calm",
                "waste",
                "faults",
            ],
            rows,
            title=(
                "Extension §5 — schedulers under path churn "
                f"(Q3 video, 2 phones, cutoff {self.cutoff_s:g}s)"
            ),
        )


def _build_schedule(
    paths: Sequence[NetworkPath], intensity: float, seed: int
) -> FaultSchedule:
    """Seeded churn for every phone path (the wired path stays up)."""
    schedule = FaultSchedule()
    if intensity <= 0.0:
        return schedule
    for k, path in enumerate(paths[1:]):
        base = seed * 7919 + k * 101
        schedule.add(
            PathFlapProcess(
                path.name,
                seed=base + 1,
                mean_up_s=60.0 / intensity,
                mean_down_s=FLAP_DOWN_S,
                min_down_s=0.5,
            )
        )
        schedule.add(
            RadioDropProcess(
                path.name,
                seed=base + 2,
                drops_per_hour=RADIO_DROPS_PER_HOUR_PER_UNIT * intensity,
                outage_s=RADIO_OUTAGE_S,
            )
        )
    return schedule


def _one_run(
    policy_name: str,
    intensity: float,
    seed: int,
    quality: str,
    cutoff_s: float,
) -> Tuple[Optional[TransactionResult], int]:
    """One churn run; ``(result, fault_events)``, result None on cutoff."""
    household = Household(LOCATION, HouseholdConfig(n_phones=2, seed=seed))
    network = household.network
    paths = household.download_paths()
    playlist = make_bipbop_video().playlist(quality)
    items = [
        TransferItem(
            s.uri,
            s.size_bytes,
            {"index": s.index, "duration_s": s.duration_s},
        )
        for s in playlist.segments
    ]
    if policy_name == "DLN":
        attach_deadlines(items)
    runner = TransactionRunner(
        network,
        paths,
        make_policy(policy_name),
        retry_policy=RetryPolicy(),
        stall_timeout_s=STALL_TIMEOUT_S,
    )
    cutoff = network.time + cutoff_s
    runner.start(
        Transaction(
            items, name=f"churn-{policy_name}-{intensity:g}-{seed}"
        )
    )
    schedule = _build_schedule(paths, intensity, seed)
    if schedule.processes:
        bind_fault_schedule(runner, schedule, horizon=cutoff)
    while not runner.finished and network.time < cutoff:
        if not network.step(max_time=cutoff):
            break
    faults = sum(
        1
        for event in runner.degradations
        if event.kind in ("path-fault", "stall")
    )
    if not runner.finished:
        return None, faults
    return runner.collect_result(), faults


@experiment(
    "ext-churn",
    title="Extension §5 — scheduler robustness under path churn",
    description="extension: scheduler robustness under path churn",
    paper_ref="§3, §5",
    claims=(
        "Paper (prose only): phones leave Wi-Fi range and radios drop, "
        "but the scheduler comparison runs on stable paths.\n"
        "Measured: with retries, stall watchdog and dynamic membership, "
        "every policy completes every transaction at every churn level. "
        "Pull-based GRD/DLN stay fastest and degrade smoothly (x1.6 at "
        "4 flaps/min) at the price of duplication waste; MIN pays the "
        "largest slowdown (x1.9) as its estimate-committed queues "
        "strand behind flapping paths; RR survives churn only because "
        "each re-join re-deals its residual queues — which can even "
        "fix its static imbalance."
    ),
    bench_params={
        "seeds": (0, 1, 2, 3, 4),
        "intensities": (0.0, 1.0, 2.0, 4.0),
    },
    quick_params={"seeds": (0,), "intensities": (0.0, 2.0)},
    order=260,
)
def run(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    intensities: Sequence[float] = (0.0, 1.0, 2.0, 4.0),
    quality: str = "Q3",
    cutoff_s: float = 1800.0,
) -> ChurnResult:
    """Sweep the four policies over the churn intensities."""
    intensities = tuple(intensities)
    if 0.0 not in intensities:
        # The calm run is the slowdown baseline; always measure it.
        intensities = (0.0,) + intensities
    cells: List[ChurnCell] = []
    calm_time: Dict[str, float] = {}
    for policy_name in POLICIES:
        for intensity in intensities:
            times = RunningStats()
            waste = RunningStats()
            faults = RunningStats()
            completed = 0
            for seed in seeds:
                result, fault_events = _one_run(
                    policy_name, intensity, seed, quality, cutoff_s
                )
                faults.add(float(fault_events))
                if result is None:
                    continue
                completed += 1
                times.add(result.total_time)
                waste.add(result.overhead_fraction)
            mean_time = times.mean if completed else float("inf")
            if intensity == 0.0:
                calm_time[policy_name] = mean_time
            baseline = calm_time.get(policy_name, mean_time)
            cells.append(
                ChurnCell(
                    policy=policy_name,
                    intensity=intensity,
                    completion_rate=completed / len(tuple(seeds)),
                    mean_time_s=mean_time,
                    slowdown=(
                        mean_time / baseline if baseline > 0.0 else 1.0
                    ),
                    waste_fraction=waste.mean if completed else 0.0,
                    mean_fault_events=faults.mean,
                )
            )
    return ChurnResult(cutoff_s=cutoff_s, cells=tuple(cells))
