"""Plain-text table rendering for experiment results.

The benchmark harness prints each reproduced table/figure as an aligned
text table so a reader can compare against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.util.units import rate_to_mbps


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by
    the caller so each experiment controls its own precision.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def fmt(value: float, digits: int = 2) -> str:
    """Format a float with fixed decimals (the tables' default look)."""
    return f"{value:.{digits}f}"


def fmt_mbps(bps: float, digits: int = 2) -> str:
    """Format a bits/second rate in Mbps."""
    return f"{rate_to_mbps(bps):.{digits}f}"
