"""Ablation: what the greedy scheduler's duplication actually buys.

§4.1.1's design accepts up to (N−1)·S_max of duplicate bytes in exchange
for never waiting on a slow path's last item. This ablation isolates that
trade: GRD with and without endgame duplication, on two regimes —

* **steady paths** (the scheduler-comparison testbed at night): the
  endgame is short, duplication buys little and wastes a few hundred kB;
* **a degrading path** (one phone's radio collapses mid-transaction):
  without duplication the transaction waits for the dying path; with it,
  the stalled item is rescued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import TransactionRunner
from repro.core.scheduler.greedy import GreedyPolicy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.fluid import FluidNetwork
from repro.netsim.latency import RttModel
from repro.netsim.link import Link, PiecewiseLink
from repro.netsim.path import NetworkPath
from repro.netsim.topology import Household, HouseholdConfig
from repro.experiments.fig06_scheduler import TESTBED_LOCATION
from repro.util.stats import RunningStats
from repro.util.units import MB, bytes_to_megabytes, kbps, mbps
from repro.web.hls import make_bipbop_video


@dataclass(frozen=True)
class DuplicationCell:
    """One regime, with/without duplication."""

    time_with_s: float
    time_without_s: float
    waste_with_mb: float

    @property
    def rescue_benefit(self) -> float:
        """Fraction of time saved by duplication."""
        return 1.0 - self.time_with_s / self.time_without_s


@dataclass(frozen=True)
class DuplicationAblationResult:
    """Both regimes."""

    cells: Dict[str, DuplicationCell]

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One row per regime."""
        rows = [
            (
                regime,
                fmt(cell.time_with_s, 1),
                fmt(cell.time_without_s, 1),
                fmt(cell.waste_with_mb, 2),
                f"{cell.rescue_benefit:+.0%}",
            )
            for regime, cell in sorted(self.cells.items())
        ]
        return render_table(
            [
                "regime",
                "GRD (s)",
                "GRD no-dup (s)",
                "waste (MB)",
                "benefit",
            ],
            rows,
            title="Ablation §4.1.1 — endgame duplication on vs off",
        )


def _steady_regime(seeds: Sequence[int]) -> DuplicationCell:
    video = make_bipbop_video()
    playlist = video.playlist("Q4")
    items = [
        TransferItem(s.uri, s.size_bytes, {"index": s.index})
        for s in playlist.segments
    ]
    with_dup, without_dup, waste = (
        RunningStats(),
        RunningStats(),
        RunningStats(),
    )
    for seed in seeds:
        for enable in (True, False):
            household = Household(
                TESTBED_LOCATION, HouseholdConfig(n_phones=2, seed=seed)
            )
            runner = TransactionRunner(
                household.network,
                household.download_paths(),
                GreedyPolicy(enable_duplication=enable),
            )
            result = runner.run(Transaction(items))
            if enable:
                with_dup.add(result.total_time)
                waste.add(bytes_to_megabytes(result.wasted_bytes))
            else:
                without_dup.add(result.total_time)
    return DuplicationCell(
        time_with_s=with_dup.mean,
        time_without_s=without_dup.mean,
        waste_with_mb=waste.mean,
    )


def _degrading_regime(seeds: Sequence[int]) -> DuplicationCell:
    """One path's radio collapses to GPRS-class rates mid-transaction."""
    items = [TransferItem(f"seg-{i}", 1 * MB) for i in range(12)]
    with_dup, without_dup, waste = (
        RunningStats(),
        RunningStats(),
        RunningStats(),
    )
    for seed in seeds:
        for enable in (True, False):
            network = FluidNetwork()
            healthy = NetworkPath(
                "adsl", [Link("adsl", mbps(3.0))], rtt=RttModel(0.02)
            )
            dying = NetworkPath(
                "phone",
                [
                    PiecewiseLink(
                        "phone-3g",
                        # Fine for ~8 s, then the radio drops to 40 kbps
                        # (cell-edge GPRS fallback).
                        [(0.0, mbps(2.0)), (8.0 + seed, kbps(40.0))],
                    )
                ],
                rtt=RttModel(0.09),
            )
            runner = TransactionRunner(
                network,
                [healthy, dying],
                GreedyPolicy(enable_duplication=enable),
            )
            result = runner.run(Transaction(items), until=600.0)
            if enable:
                with_dup.add(result.total_time)
                waste.add(bytes_to_megabytes(result.wasted_bytes))
            else:
                without_dup.add(result.total_time)
    return DuplicationCell(
        time_with_s=with_dup.mean,
        time_without_s=without_dup.mean,
        waste_with_mb=waste.mean,
    )


@experiment(
    "ext-duplication",
    title="Ablation §4.1.1 — endgame duplication",
    description="ablation: endgame duplication",
    paper_ref="§4.1.1",
    claims=(
        "Paper: duplication bounded by (N-1)*S_max, 'generally much "
        "smaller'.\n"
        "Measured: on steady paths duplication costs <1 MB and buys "
        "~nothing; when a path degrades mid-transaction it cuts the "
        "transaction time by ~85% — it is cheap insurance against "
        "exactly the radio behaviour §3 documents."
    ),
    bench_params={"seeds": (0, 1, 2, 3)},
    quick_params={"seeds": (0,)},
    order=250,
)
def run(seeds: Sequence[int] = (0, 1, 2, 3)) -> DuplicationAblationResult:
    """Both regimes with/without duplication."""
    return DuplicationAblationResult(
        cells={
            "steady paths": _steady_regime(seeds),
            "degrading path": _degrading_regime(seeds),
        }
    )
