"""Extension: why not just MP-TCP? (§5's omitted experiment)

The paper tried MP-TCP over the same paths and found "no benefit due to
the issues probably related to the Coupled Congestion Control (CCC)
algorithm of MP-TCP that is not optimized for wireless use yet", omitting
the numbers for brevity. This experiment reconstructs that comparison
with the coupled-aggregate model of :mod:`repro.core.mptcp`: the same
video over (a) ADSL alone, (b) MP-TCP with coupled congestion control
across ADSL + phones, (c) an idealised *uncoupled* MP-TCP, and (d) the
3GOL greedy scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.items import Transaction, TransferItem
from repro.core.mptcp import DEFAULT_COUPLING_EFFICIENCY, mptcp_transfer_time
from repro.core.scheduler import TransactionRunner, make_policy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

LOCATION = LocationProfile(
    name="mptcp-home",
    description="MP-TCP comparison testbed (2 Mbps ADSL, night)",
    adsl_down_bps=mbps(2.0),
    adsl_up_bps=mbps(0.512),
    signal_dbm=-81.0,
    peak_utilization=0.35,
    measurement_hour=1.0,
    adsl_goodput_efficiency=0.55,
)

CONFIGS = ("ADSL", "MPTCP-CCC", "MPTCP-uncoupled", "3GOL-GRD")


@dataclass(frozen=True)
class MptcpComparisonResult:
    """Mean download times per transfer mode."""

    times: Dict[str, float]

    def benefit_over_adsl(self, config: str) -> float:
        """Fractional time saved vs ADSL alone."""
        return 1.0 - self.times[config] / self.times["ADSL"]

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The comparison table."""
        rows = [
            (
                config,
                fmt(self.times[config], 1),
                f"{self.benefit_over_adsl(config):+.0%}",
            )
            for config in CONFIGS
        ]
        return render_table(
            ["transfer mode", "download time (s)", "benefit"],
            rows,
            title=(
                "Extension §5 — MP-TCP (coupled CC) vs 3GOL, Q4 video, "
                "1 phone"
            ),
        )


@experiment(
    "ext-mptcp",
    title="Extension §5 — the omitted MP-TCP comparison",
    description="extension: the omitted MP-TCP comparison",
    paper_ref="§5",
    claims=(
        "Paper (prose only): MP-TCP 'provided no benefit' due to "
        "coupled congestion control on wireless.\n"
        "Measured: CCC-coupled MP-TCP gains ~10% where the 3GOL "
        "scheduler gains ~67%; an idealised uncoupled MP-TCP would "
        "match 3GOL — the gap *is* the coupling."
    ),
    bench_params={"seeds": (0, 1, 2, 3, 4)},
    quick_params={"seeds": (0,)},
    order=190,
)
def run(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    quality: str = "Q4",
    coupling_efficiency: float = DEFAULT_COUPLING_EFFICIENCY,
) -> MptcpComparisonResult:
    """Run the four transfer modes over identical conditions."""
    video = make_bipbop_video()
    playlist = video.playlist(quality)
    items = [
        TransferItem(s.uri, s.size_bytes, {"index": s.index})
        for s in playlist.segments
    ]
    stats = {config: RunningStats() for config in CONFIGS}
    for seed in seeds:
        for config in CONFIGS:
            household = Household(
                LOCATION, HouseholdConfig(n_phones=1, seed=seed)
            )
            paths = household.download_paths()
            transaction = Transaction(items, name=f"{config}-{seed}")
            if config == "ADSL":
                runner = TransactionRunner(
                    household.network, paths[:1], make_policy("GRD")
                )
                stats[config].add(runner.run(transaction).total_time)
            elif config == "3GOL-GRD":
                runner = TransactionRunner(
                    household.network, paths, make_policy("GRD")
                )
                stats[config].add(runner.run(transaction).total_time)
            else:
                efficiency = (
                    coupling_efficiency
                    if config == "MPTCP-CCC"
                    else 1.0
                )
                stats[config].add(
                    mptcp_transfer_time(
                        household.network,
                        paths,
                        transaction,
                        coupling_efficiency=efficiency,
                    )
                )
    return MptcpComparisonResult(
        times={config: stat.mean for config, stat in stats.items()}
    )
