"""Fig. 11 (a) — per-user latency speedup under the 40 MB/day budget (§6).

Over the DSLAM trace, every user's videos are boosted with two devices
sharing a 40 MB daily allowance; the figure is the CDF of
DSL-latency / 3GOL-latency per user. Paper claims: 50% of users see at
least a 20% speedup; 5% see a speedup of 2; the CDF reaches ~2.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.analysis.load import (
    DEFAULT_CELLULAR_BPS,
    DEFAULT_DAILY_BUDGET_BYTES,
    per_user_speedups,
)
from repro.analysis.stats import Ecdf
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.dslam import generate_dslam_trace


@dataclass(frozen=True)
class BudgetedSpeedupResult:
    """The speedup CDF and the paper's claims about it."""

    ecdf: Ecdf
    fraction_at_least_1_2: float
    fraction_at_least_2_0: float
    max_speedup: float
    mean_onloaded_mb: float

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """CDF sampled on the figure's x-range plus the claims."""
        xs = [1.0 + 0.1 * i for i in range(17)]
        rows = [
            (fmt(x, 1), fmt(1.0 - self.ecdf.fraction_at_least(x)))
            for x in xs
        ]
        table = render_table(
            ["speedup x", "P(X <= x)"],
            rows,
            title="Fig. 11a — CDF of per-user DSL/3GOL latency ratio (40 MB)",
        )
        claims = (
            f"\nusers with >= 1.2x: {self.fraction_at_least_1_2:.0%} "
            "(paper: >= 50%)"
            f"\nusers with >= 2.0x: {self.fraction_at_least_2_0:.1%} "
            "(paper: ~5%)"
            f"\nmax speedup: {self.max_speedup:.2f} (paper CDF ends ~2.6)"
        )
        return table + claims


@experiment(
    "fig11a",
    title="Fig. 11a — speedup CDF under 40 MB/day",
    description="speedup CDF under budget (Fig. 11a)",
    paper_ref="Fig. 11a",
    claims=(
        "Paper: >=20% speedup for 50% of users; 5% reach x2; CDF ends "
        "~2.6.\n"
        "Measured: 5.5% reach x2 and the CDF ends at 2.6 (both on the "
        "nose); 44% reach >=1.2x vs the paper's 50% — the paper's own "
        "median demand (6 videos x ~50 MB) sits slightly above what a "
        "40 MB budget can boost by 20%, so the 50% claim is only "
        "attainable with a lighter demand distribution."
    ),
    bench_params={"n_subscribers": 2000, "seed": 0},
    quick_params={"n_subscribers": 300},
    order=130,
)
def run(
    n_subscribers: int = 2000,
    seed: int = 0,
    daily_budget_bytes: float = DEFAULT_DAILY_BUDGET_BYTES,
    cellular_bps: float = DEFAULT_CELLULAR_BPS,
) -> BudgetedSpeedupResult:
    """Generate the trace and compute per-user speedups."""
    trace = generate_dslam_trace(n_subscribers=n_subscribers, seed=seed)
    speedups = per_user_speedups(
        trace,
        daily_budget_bytes=daily_budget_bytes,
        cellular_bps=cellular_bps,
    )
    values = [s.speedup for s in speedups]
    onloaded = [s.onloaded_bytes for s in speedups]
    ecdf = Ecdf(values)
    return BudgetedSpeedupResult(
        ecdf=ecdf,
        fraction_at_least_1_2=ecdf.fraction_at_least(1.2),
        fraction_at_least_2_0=ecdf.fraction_at_least(2.0),
        max_speedup=max(values),
        mean_onloaded_mb=sum(onloaded) / len(onloaded) / 1e6,
    )
