"""Fig. 9 — photo-upload times, ADSL vs one and two phones (§5.2).

The paper uploads a 30-photo set (2.5 MB ± 0.74 MB) at the five evaluation
locations, phones starting from idle. The constrained ADSL uplinks
(0.58-2.77 Mbps) make the gains large: one device cuts total upload time
by 31-75% (×1.5-×4.0), two devices by 54-84% (×2.2-×6.2), and gains are
not proportional to the device count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments import wild
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import EVALUATION_LOCATIONS, LocationProfile
from repro.traces.pictures import generate_photo_set
from repro.util.stats import RunningStats

PHONE_COUNTS: Tuple[int, ...] = (0, 1, 2)  # 0 = ADSL alone


@dataclass(frozen=True)
class UploadTimesResult:
    """Mean upload time per (location, phone count)."""

    times: Dict[Tuple[str, int], float]

    def time(self, location: str, n_phones: int) -> float:
        """One bar of the figure (seconds)."""
        return self.times[(location, n_phones)]

    def speedup(self, location: str, n_phones: int) -> float:
        """ADSL time over 3GOL time for a phone count."""
        return self.time(location, 0) / self.time(location, n_phones)

    def reduction_percent(self, location: str, n_phones: int) -> float:
        """Percentage reduction relative to ADSL alone."""
        base = self.time(location, 0)
        return 100.0 * (base - self.time(location, n_phones)) / base

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One row per location."""
        locations = sorted({loc for loc, _ in self.times})
        rows = [
            [location]
            + [fmt(self.times[(location, n)], 0) for n in PHONE_COUNTS]
            for location in locations
        ]
        return render_table(
            ["location", "ADSL (s)", "1PH (s)", "2PH (s)"],
            rows,
            title="Fig. 9 — total upload time of 30 photos",
        )


@experiment(
    "fig09",
    title="Fig. 9 — upload times (30 photos)",
    description="photo-upload times (Fig. 9)",
    paper_ref="Fig. 9",
    claims=(
        "Paper: ADSL 183-894 s; one device x1.5-x4.0, two devices "
        "x2.2-x6.2; gains sublinear in devices.\n"
        "Measured: ADSL ~210-1000 s; x1.4-x3.3 and x1.7-x5.5; "
        "sublinear. The closest quantitative match of the §5 "
        "experiments, since uplink is dominated by the (faithful) "
        "ADSL asymmetry."
    ),
    bench_params={"repetitions": 4},
    quick_params={"repetitions": 1},
    order=110,
)
def run(
    locations: Sequence[LocationProfile] = EVALUATION_LOCATIONS,
    repetitions: int = 5,
    photo_count: int = 30,
) -> UploadTimesResult:
    """Upload the photo set at every location with 0/1/2 phones."""
    times: Dict[Tuple[str, int], float] = {}
    for location in locations:
        for n_phones in PHONE_COUNTS:
            stats = RunningStats()
            for seed in range(repetitions):
                photos = generate_photo_set(count=photo_count, seed=seed)
                session = wild.make_session(
                    location, n_phones=max(n_phones, 1), seed=seed
                )
                report = session.upload_photos(
                    photos,
                    use_3gol=n_phones > 0,
                    max_phones=n_phones or None,
                )
                stats.add(report.total_time)
            times[(location.name, n_phones)] = stats.mean
    return UploadTimesResult(times=times)
