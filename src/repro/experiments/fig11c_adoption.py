"""Fig. 11 (c) — 3G traffic increase vs fraction of users adopting 3GOL.

Using the MNO population's existing demand and 20 MB/day of 3GOL use per
adopter (uniformly spread over the customer base), the figure plots the
relative increase of total and of peak-hour traffic. Paper claims: the
increase is modest at low adoption and reaches ~100% at full adoption
(20 MB/day happens to match the population's average daily demand); the
peak-hour increase is smaller than the total thanks to the misaligned
diurnal peaks, though not by much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.load import AdoptionImpact, adoption_traffic_increase
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.mno import generate_mno_dataset

DEFAULT_ADOPTION_GRID: Tuple[float, ...] = tuple(
    round(0.1 * i, 1) for i in range(0, 11)
)


@dataclass(frozen=True)
class AdoptionResult:
    """Impact per adoption fraction."""

    impacts: Tuple[AdoptionImpact, ...]

    def at(self, fraction: float) -> AdoptionImpact:
        """The impact row closest to ``fraction``."""
        return min(
            self.impacts,
            key=lambda i: abs(i.adoption_fraction - fraction),
        )

    def is_monotone(self) -> bool:
        """Both curves increase with adoption."""
        totals = [i.total_increase for i in self.impacts]
        peaks = [i.peak_increase for i in self.impacts]
        return all(a <= b + 1e-12 for a, b in zip(totals, totals[1:])) and all(
            a <= b + 1e-12 for a, b in zip(peaks, peaks[1:])
        )

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The two curves as a table."""
        rows = [
            (
                fmt(i.adoption_fraction, 1),
                fmt(i.total_increase),
                fmt(i.peak_increase),
            )
            for i in self.impacts
        ]
        return render_table(
            ["adoption", "total increase", "peak-hour increase"],
            rows,
            title="Fig. 11c — relative 3G traffic increase due to 3GOL",
        )


@experiment(
    "fig11c",
    title="Fig. 11c — traffic increase vs adoption",
    description="traffic increase vs adoption (Fig. 11c)",
    paper_ref="Fig. 11c",
    claims=(
        "Paper: modest at low adoption, ~100% at full adoption; "
        "peak-hour increase smaller than total but not by much.\n"
        "Measured: +105% total / +99% peak at full adoption, "
        "monotone, ~+10% at 10% adoption."
    ),
    bench_params={"n_users": 3000, "seed": 0},
    quick_params={"n_users": 400},
    order=150,
)
def run(
    n_users: int = 3000,
    seed: int = 0,
    adoption_grid: Sequence[float] = DEFAULT_ADOPTION_GRID,
) -> AdoptionResult:
    """Generate the MNO population and sweep adoption."""
    dataset = generate_mno_dataset(n_users=n_users, seed=seed)
    impacts = adoption_traffic_increase(dataset, adoption_grid)
    return AdoptionResult(impacts=tuple(impacts))
