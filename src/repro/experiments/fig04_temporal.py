"""Fig. 4 — aggregated throughput by hour of day, groups of 1/3/5 devices.

The paper runs hourly downloads/uploads over five days in groups of five,
three and one device and finds: single-device throughput up to ~2.5 Mbps
in both directions depending on the hour; higher per-device variability as
the group grows; per-device throughput between roughly 0.65 and 1.42 Mbps
with five devices; diurnal variation present but small (low congestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.experiments.formatting import fmt_mbps, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import MEASUREMENT_LOCATIONS, LocationProfile
from repro.traces.handsets import measure_cluster_throughput

DEFAULT_GROUP_SIZES: Tuple[int, ...] = (1, 3, 5)
DEFAULT_HOURS: Tuple[float, ...] = tuple(range(0, 24, 2))


@dataclass(frozen=True)
class TemporalThroughputResult:
    """Per-device throughput by hour for each group size and direction."""

    hours: Tuple[float, ...]
    group_sizes: Tuple[int, ...]
    #: ``per_device_bps[(direction, group)][h]`` = mean per-device rate
    #: across locations/days at hours[h].
    per_device_bps: Dict[Tuple[str, int], Tuple[float, ...]]
    #: Standard deviation, same indexing.
    per_device_sd_bps: Dict[Tuple[str, int], Tuple[float, ...]]

    def series(self, direction: str, group: int) -> Tuple[float, ...]:
        """One curve of the figure."""
        return self.per_device_bps[(direction, group)]

    def diurnal_swing(self, direction: str, group: int) -> float:
        """max/min of the hourly means — smallness = low congestion."""
        curve = self.series(direction, group)
        return max(curve) / min(curve)

    def single_device_peak_bps(self, direction: str) -> float:
        """Best hourly single-device throughput (paper: up to ~2.5 Mbps)."""
        return max(self.series(direction, 1))

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Per-device throughput table by hour."""
        rows = []
        for (direction, group), curve in sorted(self.per_device_bps.items()):
            rows.append(
                [direction, group] + [fmt_mbps(v) for v in curve]
            )
        headers = ["dir", "grp"] + [f"{int(h):02d}h" for h in self.hours]
        return render_table(
            headers,
            rows,
            title=(
                "Fig. 4 — per-device 3G throughput (Mbps) by hour, "
                "groups of 1/3/5"
            ),
        )


@experiment(
    "fig04",
    title="Fig. 4 — throughput by hour, groups of 1/3/5",
    description="throughput by hour, groups of 1/3/5 (Fig. 4)",
    paper_ref="Fig. 4",
    claims=(
        "Paper: single device up to ~2.5 Mbps either direction; "
        "per-device rate 0.65-1.42 Mbps with five devices; diurnal "
        "variation present but small.\n"
        "Measured: single-device peaks ~2-2.5 Mbps; five-device "
        "per-device means within the paper's band; swing < 2.5x."
    ),
    bench_params={"days": 2},
    quick_params={"days": 1},
    order=30,
)
def run(
    locations: Sequence[LocationProfile] = MEASUREMENT_LOCATIONS[:6],
    hours: Sequence[float] = DEFAULT_HOURS,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    days: int = 2,
    repetitions: int = 1,
) -> TemporalThroughputResult:
    """Run the hourly campaign; one seed per simulated day."""
    means: Dict[Tuple[str, int], Tuple[float, ...]] = {}
    sds: Dict[Tuple[str, int], Tuple[float, ...]] = {}
    for direction in ("down", "up"):
        for group in group_sizes:
            hour_means = []
            hour_sds = []
            for hour in hours:
                values = []
                for day in range(days):
                    for location in locations:
                        samples = measure_cluster_throughput(
                            location,
                            group,
                            direction=direction,
                            hour=hour,
                            repetitions=repetitions,
                            seed=day * 101 + int(hour),
                        )
                        for sample in samples:
                            values.extend(sample.per_device_bps)
                hour_means.append(float(np.mean(values)))
                hour_sds.append(float(np.std(values)))
            means[(direction, group)] = tuple(hour_means)
            sds[(direction, group)] = tuple(hour_sds)
    return TemporalThroughputResult(
        hours=tuple(hours),
        group_sizes=tuple(group_sizes),
        per_device_bps=means,
        per_device_sd_bps=sds,
    )
