"""§6 — allowance-estimator backtest.

"By running this estimator on the MNO dataset, we find that using τ = 5
and choosing α = 4 allows around 65% of the available free capacity to be
used by 3GOL with expected overrun time of under 1 day per month overall."

The experiment backtests ``3GOLa(t) = F̄(t) − α·σ̄(t)`` over the synthetic
MNO population for a sweep of guard values, reproducing the
utilisation/overrun trade-off and the paper's chosen operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.allowance import EstimatorEvaluation, evaluate_estimator
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.mno import generate_mno_dataset

DEFAULT_ALPHAS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 6.0)
PAPER_TAU = 5
PAPER_ALPHA = 4.0


@dataclass(frozen=True)
class EstimatorResult:
    """Evaluations per guard value."""

    tau: int
    evaluations: Dict[float, EstimatorEvaluation]

    @property
    def paper_point(self) -> EstimatorEvaluation:
        """The paper's τ=5, α=4 operating point."""
        return self.evaluations[PAPER_ALPHA]

    def utilization_decreases_with_alpha(self) -> bool:
        """Larger guards release less free capacity."""
        alphas = sorted(self.evaluations)
        utils = [self.evaluations[a].utilization_of_free for a in alphas]
        return all(u1 >= u2 - 1e-9 for u1, u2 in zip(utils, utils[1:]))

    def overruns_decrease_with_alpha(self) -> bool:
        """Larger guards overrun less."""
        alphas = sorted(self.evaluations)
        overs = [self.evaluations[a].overrun_days_per_month for a in alphas]
        return all(o1 >= o2 - 1e-9 for o1, o2 in zip(overs, overs[1:]))

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The trade-off table."""
        rows = []
        for alpha in sorted(self.evaluations):
            ev = self.evaluations[alpha]
            marker = "  <- paper" if alpha == PAPER_ALPHA else ""
            rows.append(
                (
                    fmt(alpha, 1),
                    fmt(ev.utilization_of_free),
                    fmt(ev.overrun_days_per_month),
                    fmt(ev.overrun_month_fraction) + marker,
                )
            )
        return render_table(
            [
                "alpha",
                "free capacity used",
                "overrun days/month",
                "overrun month frac",
            ],
            rows,
            title=f"§6 — allowance estimator backtest (tau={self.tau})",
        )


@experiment(
    "sec6est",
    title="§6 — allowance estimator (tau=5, alpha=4)",
    description="allowance-estimator backtest (S6)",
    paper_ref="§6",
    claims=(
        "Paper: ~65% of free capacity usable with expected overrun "
        "under 1 day/month.\n"
        "Measured: 74% of free capacity, 0.3 overrun days/month; the "
        "utilisation/overrun trade-off is monotone in alpha as the "
        "estimator intends."
    ),
    bench_params={"n_users": 2000, "seed": 0},
    quick_params={"n_users": 300},
    order=170,
)
def run(
    n_users: int = 2000,
    months: int = 12,
    seed: int = 0,
    tau: int = PAPER_TAU,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> EstimatorResult:
    """Backtest over a guard sweep."""
    dataset = generate_mno_dataset(n_users=n_users, months=months, seed=seed)
    caps = dataset.cap_by_user()
    usage = dataset.usage_by_user()
    evaluations = {
        float(alpha): evaluate_estimator(caps, usage, tau=tau, alpha=alpha)
        for alpha in alphas
    }
    return EstimatorResult(tau=tau, evaluations=evaluations)
