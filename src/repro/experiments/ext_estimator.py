"""Ablation: allowance-estimator design choices (§6).

The paper fixes τ = 5, α = 4 and reports one operating point. This
ablation maps the neighbourhood of that choice — a τ × α grid — and
compares the paper's mean-minus-guard estimator against two natural
alternatives on the same synthetic MNO population:

* **last-month**: allowance = last month's free capacity (no smoothing);
* **min-of-window**: allowance = the minimum free capacity over the τ
  window (maximally conservative, no tunable guard).

The interesting question is the *frontier*: for a given overrun budget,
which estimator releases the most free capacity?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.allowance import EstimatorEvaluation, evaluate_estimator
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.mno import MnoDataset, generate_mno_dataset

DEFAULT_TAUS: Tuple[int, ...] = (2, 3, 5, 8)
DEFAULT_ALPHAS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 6.0)


def _evaluate_min_of_window(
    dataset: MnoDataset, tau: int
) -> EstimatorEvaluation:
    """Backtest the min-of-window alternative."""
    caps = dataset.cap_by_user()
    total_free = 0.0
    total_granted = 0.0
    overrun_days: List[float] = []
    overruns = 0
    user_months = 0
    for user in dataset.users:
        cap = caps[user.user_id]
        series = list(user.monthly_usage_bytes)
        for t in range(tau, len(series)):
            window = series[t - tau : t]
            allowance = min(max(0.0, cap - u) for u in window)
            actual = series[t]
            free = max(0.0, cap - actual)
            total_free += free
            total_granted += min(allowance, free)
            combined = actual + allowance
            excess = max(0.0, combined - cap)
            if excess > 0.0 and combined > 0.0:
                overruns += 1
                overrun_days.append(30.0 * excess / combined)
            else:
                overrun_days.append(0.0)
            user_months += 1
    return EstimatorEvaluation(
        utilization_of_free=total_granted / total_free if total_free else 0.0,
        overrun_days_per_month=sum(overrun_days) / user_months,
        overrun_month_fraction=overruns / user_months,
        user_months=user_months,
    )


@dataclass(frozen=True)
class EstimatorAblationResult:
    """The grid plus the alternative estimators."""

    grid: Dict[Tuple[int, float], EstimatorEvaluation]
    last_month: EstimatorEvaluation
    min_of_window: EstimatorEvaluation
    taus: Tuple[int, ...]
    alphas: Tuple[float, ...]

    @property
    def paper_point(self) -> EstimatorEvaluation:
        """τ=5, α=4."""
        return self.grid[(5, 4.0)]

    def paper_choice_on_frontier(self) -> bool:
        """No grid point dominates the paper's (more use, fewer overruns)."""
        chosen = self.paper_point
        return not any(
            evaluation.utilization_of_free
            > chosen.utilization_of_free + 1e-9
            and evaluation.overrun_days_per_month
            < chosen.overrun_days_per_month - 1e-9
            for evaluation in self.grid.values()
        )

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Grid rows plus the alternatives."""
        rows = []
        for tau in self.taus:
            for alpha in self.alphas:
                evaluation = self.grid[(tau, alpha)]
                marker = " <- paper" if (tau, alpha) == (5, 4.0) else ""
                rows.append(
                    (
                        f"mean-guard tau={tau} a={alpha:g}",
                        fmt(evaluation.utilization_of_free),
                        fmt(evaluation.overrun_days_per_month) + marker,
                    )
                )
        rows.append(
            (
                "last-month",
                fmt(self.last_month.utilization_of_free),
                fmt(self.last_month.overrun_days_per_month),
            )
        )
        rows.append(
            (
                "min-of-window (tau=5)",
                fmt(self.min_of_window.utilization_of_free),
                fmt(self.min_of_window.overrun_days_per_month),
            )
        )
        return render_table(
            ["estimator", "free capacity used", "overrun days/month"],
            rows,
            title="Ablation §6 — allowance estimator design space",
        )


@experiment(
    "ext-estimator",
    title="Ablation §6 — estimator design space",
    description="ablation: estimator design space",
    paper_ref="§6",
    claims=(
        "Paper: one operating point (tau=5, alpha=4).\n"
        "Measured: the choice sits on the utilisation/overrun "
        "frontier of its family and beats last-month and "
        "min-of-window alternatives at comparable overrun budgets."
    ),
    bench_params={"n_users": 1500},
    quick_params={"n_users": 200},
    order=230,
)
def run(
    n_users: int = 1500,
    months: int = 14,
    seed: int = 0,
    taus: Sequence[int] = DEFAULT_TAUS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> EstimatorAblationResult:
    """Sweep the grid and evaluate the alternatives."""
    dataset = generate_mno_dataset(n_users=n_users, months=months, seed=seed)
    caps = dataset.cap_by_user()
    usage = dataset.usage_by_user()
    grid = {
        (int(tau), float(alpha)): evaluate_estimator(
            caps, usage, tau=tau, alpha=alpha
        )
        for tau in taus
        for alpha in alphas
    }
    if (5, 4.0) not in grid:
        grid[(5, 4.0)] = evaluate_estimator(caps, usage, tau=5, alpha=4.0)
    last_month = evaluate_estimator(caps, usage, tau=1, alpha=0.0)
    return EstimatorAblationResult(
        grid=grid,
        last_month=last_month,
        min_of_window=_evaluate_min_of_window(dataset, tau=5),
        taus=tuple(int(t) for t in taus),
        alphas=tuple(float(a) for a in alphas),
    )
