"""Ablation: can the MIN scheduler be tuned into competitiveness?

§5.1 claims: "Changing filter and/or sampling criteria was not helpful in
improving the performance of the MIN scheduler." This ablation verifies
that claim in our reproduction: the EWMA smoothing weight is swept from
sluggish (0.25) to memoryless (1.0) and the bandwidth prior across a
4x range, on the scheduler-comparison testbed at the quality where MIN
hurts most (Q4). If the paper is right, no setting should close the gap
to GRD — the failure is structural (no reassignment of committed items),
not parametric.

A detail the sweep itself exposes: within a single transaction the EWMA
weight barely matters, because MIN commits its queues right after each
path's *first* sample (which bootstraps the filter identically for every
weight) — only the bandwidth prior moves the outcome, and even its best
value leaves MIN well behind GRD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import SchedulingPolicy, TransactionRunner
from repro.core.scheduler.greedy import GreedyPolicy
from repro.core.scheduler.mintime import MinTimePolicy
from repro.experiments.fig06_scheduler import TESTBED_LOCATION
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import Household, HouseholdConfig
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

DEFAULT_SMOOTHINGS: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
DEFAULT_PRIORS_MBPS: Tuple[float, ...] = (1.0, 2.0, 4.0)


@dataclass(frozen=True)
class MinTuningResult:
    """Mean Q4 download time per (smoothing, prior) plus the GRD anchor."""

    times: Dict[Tuple[float, float], float]
    grd_time_s: float

    @property
    def best_min_time_s(self) -> float:
        """The best MIN configuration found."""
        return min(self.times.values())

    def no_setting_beats_grd(self, margin: float = 1.05) -> bool:
        """The paper's claim: tuning cannot close the gap."""
        return self.best_min_time_s > self.grd_time_s * margin

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Grid rows plus the GRD anchor."""
        rows = []
        for (smoothing, prior), value in sorted(self.times.items()):
            marker = (
                " <- paper's setting" if (smoothing, prior) == (0.75, 2.0) else ""
            )
            rows.append(
                (
                    f"MIN a={smoothing:g} prior={prior:g}Mbps",
                    fmt(value, 1) + marker,
                )
            )
        rows.append(("GRD (anchor)", fmt(self.grd_time_s, 1)))
        return render_table(
            ["scheduler configuration", "Q4 download time (s)"],
            rows,
            title="Ablation §5.1 — tuning MIN (the paper says it cannot help)",
        )


@experiment(
    "ext-min-tuning",
    title="Ablation §5.1 — tuning the MIN scheduler",
    description="ablation: tuning the MIN scheduler",
    paper_ref="§5.1",
    claims=(
        "Paper: 'Changing filter and/or sampling criteria was not "
        "helpful in improving the performance of the MIN scheduler.'\n"
        "Measured: across a smoothing x prior grid, the best MIN "
        "setting still trails GRD by >25%; within one transaction the "
        "EWMA weight is inert (queues are committed after the first "
        "sample), so the failure is structural, exactly as claimed."
    ),
    bench_params={"repetitions": 8},
    quick_params={"repetitions": 2},
    order=240,
)
def run(
    smoothings: Sequence[float] = DEFAULT_SMOOTHINGS,
    priors_mbps: Sequence[float] = DEFAULT_PRIORS_MBPS,
    repetitions: int = 8,
) -> MinTuningResult:
    """Sweep MIN's parameters against a fixed GRD anchor."""
    video = make_bipbop_video()
    playlist = video.playlist("Q4")
    items = [
        TransferItem(s.uri, s.size_bytes, {"index": s.index})
        for s in playlist.segments
    ]

    def measure(policy_factory: Callable[[], SchedulingPolicy]) -> float:
        stats = RunningStats()
        for seed in range(repetitions):
            household = Household(
                TESTBED_LOCATION, HouseholdConfig(n_phones=1, seed=seed)
            )
            runner = TransactionRunner(
                household.network,
                household.download_paths(),
                policy_factory(),
            )
            stats.add(runner.run(Transaction(items)).total_time)
        return stats.mean

    times: Dict[Tuple[float, float], float] = {}
    for smoothing in smoothings:
        for prior in priors_mbps:
            times[(float(smoothing), float(prior))] = measure(
                lambda s=smoothing, p=prior: MinTimePolicy(
                    smoothing=s, prior_bps=mbps(p)
                )
            )
    grd_time = measure(GreedyPolicy)
    return MinTuningResult(times=times, grd_time_s=grd_time)
