"""Fig. 7 — pre-buffering gain vs pre-buffer amount (§5.2).

For the locations with the fastest (loc2) and slowest (loc4) ADSL, the
paper sweeps the player's pre-buffer from 20% to 100% of the video length
across all four qualities, with one and two phones, starting the radios
from idle ("3G") and from a connected state ("H"). 3GOL gain is the
reduction in seconds of the time to fill the pre-buffer, relative to ADSL
alone. Expected shapes: the gain grows with both video quality and
pre-buffer amount; a second phone adds up to ~+26-35% on the best gain;
connected-mode starts bring only marginal, shrinking benefits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.proxy import VideoDownloadReport
from repro.experiments import wild
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import EVALUATION_LOCATIONS, LocationProfile
from repro.util.stats import RunningStats
from repro.web.hls import HlsPlaylist

QUALITIES: Tuple[str, ...] = ("Q1", "Q2", "Q3", "Q4")
PREBUFFER_FRACTIONS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
#: (n_phones, connected_start) configurations, in the paper's order.
CONFIGS: Tuple[Tuple[int, bool], ...] = (
    (1, False),  # 3G_1PH
    (1, True),   # H_1PH
    (2, False),  # 3G_2PH
    (2, True),   # H_2PH
)


def config_label(n_phones: int, connected: bool) -> str:
    """The paper's series label for a configuration."""
    return f"{'H' if connected else '3G'}_{n_phones}PH"


def prebuffer_times(
    report: VideoDownloadReport,
    playlist: HlsPlaylist,
    fractions: Sequence[float],
) -> List[float]:
    """Pre-buffer fill times for several fractions from one download."""
    times = []
    for fraction in fractions:
        needed = playlist.segments_for_prebuffer(fraction)
        times.append(
            report.playlist_time
            + report.result.time_to_complete([s.uri for s in needed])
        )
    return times


@dataclass(frozen=True)
class PrebufferGainResult:
    """Mean gains (seconds) per (location, config, quality, fraction)."""

    fractions: Tuple[float, ...]
    #: gains[(location, config_label, quality)] -> one value per fraction.
    gains: Dict[Tuple[str, str, str], Tuple[float, ...]]

    def gain(
        self, location: str, config: str, quality: str, fraction: float
    ) -> float:
        """One bar of the figure."""
        series = self.gains[(location, config, quality)]
        return series[self.fractions.index(fraction)]

    def best_gain(self, location: str, config: str) -> float:
        """Largest gain across qualities and fractions for a config."""
        return max(
            max(series)
            for (loc, cfg, _), series in self.gains.items()
            if loc == location and cfg == config
        )

    def monotone_in_quality(
        self, location: str, config: str, fraction: float
    ) -> bool:
        """Gain increases from Q1 to Q4 at a fixed pre-buffer amount."""
        idx = self.fractions.index(fraction)
        values = [
            self.gains[(location, config, quality)][idx]
            for quality in QUALITIES
        ]
        return all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One table block per (location, config)."""
        blocks = []
        keys = sorted({(loc, cfg) for (loc, cfg, _) in self.gains})
        for location, config in keys:
            rows = []
            for quality in QUALITIES:
                series = self.gains[(location, config, quality)]
                rows.append([quality] + [fmt(v, 1) for v in series])
            headers = ["quality"] + [
                f"{int(f * 100)}%" for f in self.fractions
            ]
            blocks.append(
                render_table(
                    headers,
                    rows,
                    title=(
                        f"Fig. 7 — 3GOL pre-buffer gain (s), {location}, "
                        f"{config}"
                    ),
                )
            )
        return "\n\n".join(blocks)


@experiment(
    "fig07",
    title="Fig. 7 — pre-buffering gain vs pre-buffer amount",
    description="pre-buffering gains (Fig. 7)",
    paper_ref="Fig. 7",
    claims=(
        "Paper: gain grows with quality and pre-buffer amount; second "
        "device adds up to +26-35%; connected-mode (H) start gains "
        "are marginal. Calibration: the wild runs use a 3 Mbps "
        "per-connection TCP cap (rwnd/RTT to a distant origin) — "
        "without it the paper's loc2 gains (38 s on a 21.6 Mbps line) "
        "are physically impossible; see DESIGN.md.\n"
        "Measured: both monotonicities hold; 2nd phone improves the "
        "best gain at both locations; H-mode gains are a few seconds "
        "at most."
    ),
    bench_params={"repetitions": 4},
    quick_params={"repetitions": 1},
    order=90,
)
def run(
    locations: Sequence[LocationProfile] = (
        EVALUATION_LOCATIONS[1],  # loc2, fastest ADSL
        EVALUATION_LOCATIONS[3],  # loc4, slowest ADSL
    ),
    fractions: Sequence[float] = PREBUFFER_FRACTIONS,
    configs: Sequence[Tuple[int, bool]] = CONFIGS,
    repetitions: int = 5,
) -> PrebufferGainResult:
    """Run the sweep. One download per (config, quality, seed) yields the
    pre-buffer times for *all* fractions at once."""
    gains: Dict[Tuple[str, str, str], Tuple[float, ...]] = {}
    for location in locations:
        for quality in QUALITIES:
            # ADSL baseline pre-buffer times.
            base_stats = [RunningStats() for _ in fractions]
            playlist = None
            for seed in range(repetitions):
                session = wild.make_session(location, n_phones=1, seed=seed)
                video = session.host_bipbop()
                playlist = video.playlist(quality)
                report = session.download_video(
                    "bipbop", quality, use_3gol=False, prebuffer_fraction=None
                )
                for stat, value in zip(
                    base_stats, prebuffer_times(report, playlist, fractions)
                ):
                    stat.add(value)
            for n_phones, connected in configs:
                stats = [RunningStats() for _ in fractions]
                for seed in range(repetitions):
                    session = wild.make_session(
                        location,
                        n_phones=n_phones,
                        seed=seed,
                        connected_start=connected,
                    )
                    video = session.host_bipbop()
                    playlist = video.playlist(quality)
                    report = session.download_video(
                        "bipbop", quality, prebuffer_fraction=None
                    )
                    for stat, value in zip(
                        stats, prebuffer_times(report, playlist, fractions)
                    ):
                        stat.add(value)
                key = (
                    location.name,
                    config_label(n_phones, connected),
                    quality,
                )
                gains[key] = tuple(
                    max(0.0, base.mean - onload.mean)
                    for base, onload in zip(base_stats, stats)
                )
    return PrebufferGainResult(
        fractions=tuple(fractions), gains=gains
    )
