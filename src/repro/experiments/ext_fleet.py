"""Extension: fleet-scale city day over the adoption ramp.

§6/§7 compare the multi-provider and network-integrated architectures
analytically — per-household caps vs a permit server — but the paper
never simulates them at population scale, where the interesting
dynamics live: caps exhaust household by household, busy sectors cross
the §2.4 acceptance threshold, and the permit server itself becomes a
bottleneck. This experiment runs the sharded fleet simulator
(:mod:`repro.fleet`) over a whole city day at increasing onload
adoption and measures, per policy,

* **onload volume and speedup** — bytes moved to 3G and the mean
  per-household backlog speedup vs the adsl-only baseline;
* **cap exhaustion** — households whose §6 daily budget ran dry;
* **sector congestion** — sector-rounds driven to full utilization
  (multi-provider has no network gate, so it can congest cells that
  the network-integrated permit server protects);
* **permit load** — requests, grants and denials (server capacity vs
  utilization threshold) under the §7 architecture.

The adsl-only baseline is adoption-independent, so it runs once and is
shared across the whole ramp. Everything derives from one seed through
the deterministic-merge contract (``docs/FLEET.md``): the rendered
report and its digest are byte-identical at any ``--jobs`` and any
shard count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.fleet.dispatcher import (
    DEFAULT_SHARDS,
    FleetOutcome,
    PolicyRun,
    run_policy,
)
from repro.fleet.population import FleetParameters
from repro.fleet.report import FleetReport
from repro.util.units import GB, mbps

#: The DSLAM backhaul for the stressed city: 128 households x 3 Mbps
#: lines sharing 16 Mbps is a 24x oversubscription — the "heavily
#: oversubscribed aggregation link" regime of §2.1, which is what gives
#: onloading something to relieve at peak hours.
DEFAULT_BACKHAUL_MBPS = 16.0


@dataclass(frozen=True)
class FleetSweepResult:
    """The adoption ramp: one merged fleet report per adoption level."""

    n_households: int
    seed: int
    backhaul_mbps: float
    reports: Tuple[FleetReport, ...]
    findings: Tuple[str, ...]

    def digest(self) -> str:
        """sha256 over every report's canonical lines, in ramp order."""
        lines = []
        for report in self.reports:
            lines.extend(report.lines())
        payload = "\n".join(lines).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        payload = jsonable(self)
        payload["digest"] = self.digest()
        return dict(payload)

    def render(self) -> str:
        """The ramp table: one row per (adoption, onload policy)."""
        rows = []
        for report in self.reports:
            for summary in report.summaries:
                if summary.policy == "adsl-only":
                    continue
                denials = summary.permit_denials
                rows.append(
                    (
                        fmt(report.adoption),
                        summary.policy,
                        fmt(summary.onload_bytes / GB, 1),
                        fmt(summary.speedup_mean),
                        summary.cap_exhaustions,
                        summary.congested_sector_rounds,
                        denials.get("capacity", 0),
                        denials.get("threshold", 0),
                        fmt(summary.sector_util_max),
                    )
                )
        table = render_table(
            (
                "adoption",
                "policy",
                "3G GB",
                "speedup",
                "cap dry",
                "congested",
                "deny cap",
                "deny util",
                "util max",
            ),
            rows,
            title=(
                "Extension §6/§7 — fleet-scale city day "
                f"({self.n_households} households, seed {self.seed}, "
                f"{fmt(self.backhaul_mbps, 0)} Mbps backhaul)"
            ),
        )
        lines = [table, "", f"digest: {self.digest()}"]
        lines.extend(f"FINDING {finding}" for finding in self.findings)
        return "\n".join(lines)


@experiment(
    "ext-fleet",
    title="Extension §6/§7 — fleet-scale city day (sharded)",
    description="extension: city-scale adoption ramp, sharded fleet",
    paper_ref="§2.4, §6, §7",
    claims=(
        "Paper (analytical only): §6 bounds 3G spending with "
        "per-household daily caps; §7 argues a network-integrated "
        "permit server is needed to protect busy cells.\n"
        "Measured (100k households, 24x oversubscribed backhaul): the "
        "multi-provider architecture onloads the most but drives busy "
        "sectors to full utilization and exhausts tens of thousands of "
        "daily caps by 50% adoption; the network-integrated permit "
        "server keeps every sector at or below its background peak "
        "(the 0.70 acceptance threshold gates admission), at the cost "
        "of denying permits — mostly on server signalling capacity, "
        "the §7 scaling concern — and a smaller mean speedup."
    ),
    bench_params={
        "n_households": 100_000,
        "seed": 0,
        "adoptions": (0.1, 0.25, 0.5, 1.0),
    },
    quick_params={
        "n_households": 1000,
        "seed": 0,
        "adoptions": (0.25, 1.0),
        "households_per_dslam": 128,
        "households_per_sector": 125,
    },
    order=270,
)
def run(
    n_households: int = 1000,
    seed: int = 0,
    adoptions: Sequence[float] = (0.25, 1.0),
    households_per_dslam: int = 512,
    households_per_sector: int = 500,
    backhaul_mbps: float = DEFAULT_BACKHAUL_MBPS,
    jobs: int = 1,
    n_shards: int = DEFAULT_SHARDS,
) -> FleetSweepResult:
    """Run the adoption ramp; the baseline is shared across the grid."""
    params = FleetParameters(
        n_households=n_households,
        seed=seed,
        households_per_dslam=households_per_dslam,
        households_per_sector=households_per_sector,
        dslam_backhaul_bps=mbps(backhaul_mbps),
    )
    baseline = run_policy(
        params, "adsl-only", 0.0, jobs=jobs, n_shards=n_shards
    )
    reports = []
    findings = []
    for adoption in adoptions:
        runs: Dict[str, PolicyRun] = {"adsl-only": baseline}
        for policy in ("multi-provider", "network-integrated"):
            runs[policy] = run_policy(
                params, policy, adoption, jobs=jobs, n_shards=n_shards
            )
        outcome = FleetOutcome(
            params=params, adoption=adoption, runs=runs
        )
        report = FleetReport.from_outcome(outcome)
        reports.append(report)
        findings.extend(
            f"adoption {fmt(adoption)}: {finding}"
            for finding in report.check_conservation(outcome)
        )
    return FleetSweepResult(
        n_households=n_households,
        seed=seed,
        backhaul_mbps=backhaul_mbps,
        reports=tuple(reports),
        findings=tuple(findings),
    )
