"""§2.1 — back-of-envelope capacity comparison.

Reproduces the paper's arithmetic: one downtown cell covers 4 375
subscribers → 875 ADSL connections → 5.863 Gbps aggregate downlink, vs a
40-50 Mbps cell backhaul: the cellular network is 1-2 orders of magnitude
smaller; on the uplink (1/10 ADSL asymmetry) the gap is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.capacity import (
    CapacityComparison,
    CellAreaAssumptions,
    compare_capacity,
)
from repro.experiments.formatting import fmt, render_table


@dataclass(frozen=True)
class CapacityResult:
    """The comparison under the paper's assumptions."""

    comparison: CapacityComparison

    def render(self) -> str:
        """The calculation's lines, paper-style."""
        c = self.comparison
        rows = [
            ("subscribers in cell area", fmt(c.subscribers_in_cell, 0)),
            ("ADSL connections", fmt(c.adsl_connections, 0)),
            (
                "ADSL aggregate downlink",
                f"{c.adsl_aggregate_down_bps / 1e9:.3f} Gbps",
            ),
            (
                "ADSL aggregate uplink",
                f"{c.adsl_aggregate_up_bps / 1e9:.3f} Gbps",
            ),
            ("cell backhaul", f"{c.cell_backhaul_bps / 1e6:.0f} Mbps"),
            ("down ratio (ADSL/cell)", fmt(c.down_ratio, 1)),
            ("orders of magnitude", fmt(c.down_orders_of_magnitude, 2)),
        ]
        return render_table(
            ["quantity", "value"],
            rows,
            title="§2.1 — back-of-envelope capacity comparison",
        )


def run(
    assumptions: CellAreaAssumptions = CellAreaAssumptions(),
) -> CapacityResult:
    """Evaluate the calculation."""
    return CapacityResult(comparison=compare_capacity(assumptions))
