"""§2.1 — back-of-envelope capacity comparison.

Reproduces the paper's arithmetic: one downtown cell covers 4 375
subscribers → 875 ADSL connections → 5.863 Gbps aggregate downlink, vs a
40-50 Mbps cell backhaul: the cellular network is 1-2 orders of magnitude
smaller; on the uplink (1/10 ADSL asymmetry) the gap is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.capacity import (
    CapacityComparison,
    CellAreaAssumptions,
    compare_capacity,
)
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.util.units import rate_to_gbps, rate_to_mbps


@dataclass(frozen=True)
class CapacityResult:
    """The comparison under the paper's assumptions."""

    comparison: CapacityComparison

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The calculation's lines, paper-style."""
        c = self.comparison
        rows = [
            ("subscribers in cell area", fmt(c.subscribers_in_cell, 0)),
            ("ADSL connections", fmt(c.adsl_connections, 0)),
            (
                "ADSL aggregate downlink",
                f"{rate_to_gbps(c.adsl_aggregate_down_bps):.3f} Gbps",
            ),
            (
                "ADSL aggregate uplink",
                f"{rate_to_gbps(c.adsl_aggregate_up_bps):.3f} Gbps",
            ),
            (
                "cell backhaul",
                f"{rate_to_mbps(c.cell_backhaul_bps):.0f} Mbps",
            ),
            ("down ratio (ADSL/cell)", fmt(c.down_ratio, 1)),
            ("orders of magnitude", fmt(c.down_orders_of_magnitude, 2)),
        ]
        return render_table(
            ["quantity", "value"],
            rows,
            title="§2.1 — back-of-envelope capacity comparison",
        )


@experiment(
    "sec21",
    title="§2.1 — back-of-envelope capacity comparison",
    description="capacity back-of-envelope (S2.1)",
    paper_ref="§2.1",
    claims=(
        "Paper: 4375 subscribers/cell -> 875 ADSL lines -> 5.863 Gbps "
        "vs a 40-50 Mbps cell backhaul: 1-2 orders of magnitude.\n"
        "Measured: identical arithmetic (differences <2% from the "
        "paper's rounding)."
    ),
    order=160,
)
def run(
    assumptions: CellAreaAssumptions = CellAreaAssumptions(),
) -> CapacityResult:
    """Evaluate the calculation."""
    return CapacityResult(comparison=compare_capacity(assumptions))
