"""Fig. 1 — traffic pattern over a day on cellular and wired networks.

The paper's figure plots normalized hourly volume for a 3G network and a
DSLAM and draws two conclusions 3GOL rests on: the cellular network has a
strong diurnal pattern (so off-peak capacity exists) and the two peaks are
not aligned. Here the wired series comes from the synthetic DSLAM trace's
actual video request volumes and the mobile series from the 3G web-traffic
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.diurnal import MOBILE_PROFILE
from repro.traces.dslam import generate_dslam_trace
from repro.traces.webtraffic import hourly_volume_series, normalized
from repro.util.units import GB


@dataclass(frozen=True)
class DiurnalResult:
    """The two normalized 24-hour series and their peak structure."""

    mobile: Tuple[float, ...]
    wired: Tuple[float, ...]

    @property
    def mobile_peak_hour(self) -> int:
        """Hour of the cellular network's peak."""
        return int(np.argmax(self.mobile))

    @property
    def wired_peak_hour(self) -> int:
        """Hour of the wired network's peak."""
        return int(np.argmax(self.wired))

    @property
    def peak_misalignment_hours(self) -> int:
        """Circular distance between the two peaks (hours)."""
        delta = abs(self.mobile_peak_hour - self.wired_peak_hour)
        return min(delta, 24 - delta)

    @property
    def mobile_peak_to_trough(self) -> float:
        """Peak/trough ratio of the cellular series (diurnality strength)."""
        trough = min(self.mobile)
        return max(self.mobile) / trough if trough > 0 else float("inf")

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Table of both normalized series by hour."""
        rows = [
            (hour, fmt(self.mobile[hour]), fmt(self.wired[hour]))
            for hour in range(24)
        ]
        return render_table(
            ["hour", "mobile (norm)", "wired (norm)"],
            rows,
            title="Fig. 1 — normalized daily traffic, cellular vs wired",
        )


@experiment(
    "fig01",
    title="Fig. 1 — diurnal traffic, cellular vs wired",
    description="diurnal wired vs mobile traffic (Fig. 1)",
    paper_ref="Fig. 1",
    claims=(
        "Paper: cellular traffic is strongly diurnal; the wired and "
        "mobile peaks are not aligned.\n"
        "Measured: mobile peaks at 18h, wired at 21-22h (3-4 h apart); "
        "mobile peak/trough ratio > 2."
    ),
    bench_params={"seed": 0, "n_subscribers": 1500},
    quick_params={"n_subscribers": 300},
    order=10,
)
def run(seed: int = 0, n_subscribers: int = 1000) -> DiurnalResult:
    """Generate one day of both networks and normalize."""
    mobile_series = hourly_volume_series(
        total_daily_bytes=1.0 * GB,
        profile=MOBILE_PROFILE,
        noise_sigma=0.05,
        seed=seed,
    )
    trace = generate_dslam_trace(n_subscribers=n_subscribers, seed=seed)
    wired_series = trace.hourly_volume_bytes()
    return DiurnalResult(
        mobile=tuple(normalized(mobile_series)),
        wired=tuple(normalized(wired_series)),
    )
