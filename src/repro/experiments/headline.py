"""§5 headline numbers.

The abstract and conclusions quote aggregate speedups over the whole
in-the-wild evaluation: an average pre-buffering speedup of ×2.1 and a
maximum of ×3.8 with an average transaction-time reduction of 47%
(pre-buffer settings 20-80% across locations), and maximum application
speedups of about ×4 (downlink) and ×6 (uplink). This experiment pools
the fig07/fig08/fig09 machinery into those few numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import fig07_prebuffer, fig08_download, fig09_upload
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable


@dataclass(frozen=True)
class HeadlineResult:
    """The abstract's numbers, as measured by the reproduction."""

    avg_prebuffer_speedup: float
    max_prebuffer_speedup: float
    max_download_speedup: float
    max_upload_speedup: float
    avg_transaction_reduction_pct: float

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Side-by-side with the paper's quotes."""
        rows = [
            ("avg pre-buffer speedup", fmt(self.avg_prebuffer_speedup, 1), "x2.1"),
            ("max pre-buffer speedup", fmt(self.max_prebuffer_speedup, 1), "x3.8"),
            ("max download speedup", fmt(self.max_download_speedup, 1), "x4"),
            ("max upload speedup", fmt(self.max_upload_speedup, 1), "x6"),
            (
                "avg transaction reduction %",
                fmt(self.avg_transaction_reduction_pct, 0),
                "47%",
            ),
        ]
        return render_table(
            ["metric", "measured", "paper"],
            rows,
            title="§5 — headline speedups",
        )


@experiment(
    "headline",
    title="§5 headline numbers",
    description="S5 headline speedups",
    paper_ref="§5",
    claims=(
        "Paper: max speedups ~x3.8 (pre-buffer), x4 (download), x6 "
        "(upload); average transaction reduction 47%.\n"
        "Measured: x2.4 download / x5.5 upload maxima, ~43% average "
        "reduction — compressed on the downlink for the same reason "
        "as Fig. 8."
    ),
    bench_params={"repetitions": 3},
    quick_params={"repetitions": 1},
    order=270,
)
def run(repetitions: int = 3) -> HeadlineResult:
    """Compute the headline numbers from reduced-size sweeps."""
    prebuffer = fig07_prebuffer.run(repetitions=repetitions)
    download = fig08_download.run(repetitions=repetitions)
    upload = fig09_upload.run(repetitions=repetitions)

    # Pre-buffer speedups need the baseline times too, so recompute the
    # ratio from gains: speedup = base / (base - gain). The gains result
    # does not carry baselines, so approximate via the download result's
    # per-location speedups for the average, and take the best per-config
    # gain ratio for the max from the fig08 speedups.
    download_speedups = [
        download.speedup(loc, cfg) for (loc, cfg) in download.reductions
    ]
    upload_speedups = [
        upload.speedup(loc, n)
        for (loc, n) in upload.times
        if n > 0
    ]
    reductions = [
        download.reduction(loc, cfg) for (loc, cfg) in download.reductions
    ]
    return HeadlineResult(
        avg_prebuffer_speedup=sum(download_speedups) / len(download_speedups),
        max_prebuffer_speedup=max(download_speedups),
        max_download_speedup=max(download_speedups),
        max_upload_speedup=max(upload_speedups),
        avg_transaction_reduction_pct=sum(reductions) / len(reductions),
    )
