"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning a structured result
object with a ``render()`` method that prints the same rows/series the
paper reports. The benchmarks under ``benchmarks/`` call these and assert
the paper's shape claims; EXPERIMENTS.md records paper-vs-measured.

Index (see DESIGN.md §4 for the full mapping):

========  ==========================================================
fig01     diurnal wired vs mobile traffic, misaligned peaks
fig03     aggregate 3G throughput vs number of devices
fig04     throughput by hour of day, device groups of 1/3/5
fig05     per-base-station throughput distributions (violins)
table02   six locations: DSL vs 3G vs 3GOL speedup (3 devices)
table03   per-device throughput by cluster size
fig06     scheduler comparison (GRD / RR / MIN) on the 2 Mbps testbed
table04   the five in-the-wild evaluation locations
fig07     pre-buffering gain vs pre-buffer amount
fig08     total video download-time reduction per location
fig09     upload times, ADSL vs one and two phones
fig10     CDF of used cap fraction (MNO)
fig11a    per-user speedup CDF under the 40 MB/day budget
fig11b    onloaded cellular load vs backhaul capacity
fig11c    traffic increase vs 3GOL adoption
sec21     back-of-envelope capacity comparison
sec6est   allowance-estimator backtest (tau=5, alpha=4)
headline  §5 headline speedups (prebuffer/download/upload)
========  ==========================================================
"""
