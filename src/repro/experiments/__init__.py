"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function decorated with
:func:`repro.experiments.registry.experiment`, which registers it in the
shared catalogue with its description, benchmark-size and ``--quick``
parameter sets, and the paper-vs-measured commentary EXPERIMENTS.md
embeds. The result object returned by ``run()`` honours the structured
contract: ``render()`` (aligned text table) and ``to_dict()``
(JSON-ready payload).

The registry (:mod:`repro.experiments.registry`) is the single source of
truth: ``python -m repro list``/``run`` read it, the benchmarks under
``benchmarks/`` pull their parameter sets from it, and the report
generator (:mod:`repro.experiments.report`) renders it into
EXPERIMENTS.md. Execution goes through the engine in
:mod:`repro.experiments.runner` — parallel across processes
(``--jobs``), failure-isolated, and cached on disk keyed by (experiment
id, parameters, source digest).

Catalogue index (``python -m repro list`` prints the live version; see
DESIGN.md §4 for the full paper mapping):

=================  =====================================================
fig01              diurnal wired vs mobile traffic, misaligned peaks
fig03              aggregate 3G throughput vs number of devices
fig04              throughput by hour of day, device groups of 1/3/5
fig05              per-base-station throughput distributions (violins)
table02            six locations: DSL vs 3G vs 3GOL speedup (3 devices)
table03            per-device throughput by cluster size
fig06              scheduler comparison (GRD / RR / MIN), 2 Mbps testbed
table04            the five in-the-wild evaluation locations
fig07              pre-buffering gain vs pre-buffer amount
fig08              total video download-time reduction per location
fig09              upload times, ADSL vs one and two phones
fig10              CDF of used cap fraction (MNO)
fig11a             per-user speedup CDF under the 40 MB/day budget
fig11b             onloaded cellular load vs backhaul capacity
fig11c             traffic increase vs 3GOL adoption
sec21              back-of-envelope capacity comparison
sec6est            allowance-estimator backtest (tau=5, alpha=4)
ext-lte            extension: 3GOL over LTE
ext-mptcp          extension: the omitted MP-TCP comparison
ext-playout        extension: playout-phase coverage
ext-dslam          extension: DSLAM oversubscription
ext-neighborhood   extension: simultaneous adopters on one cell
ext-estimator      ablation: estimator design space
ext-min-tuning     ablation: tuning the MIN scheduler
ext-duplication    ablation: endgame duplication
ext-churn          extension: scheduler robustness under path churn
pilot              the 30-household pilot deployment
headline           §5 headline speedups (prebuffer/download/upload)
=================  =====================================================
"""
