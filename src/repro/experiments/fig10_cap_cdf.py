"""Fig. 10 — distribution of the used fraction of the cellular cap (§6).

"We find that 40% of the customers use less than 10% of their cap, and 75%
of the customers use less than 50%." The figure is the empirical CDF of
the used fraction over the MNO population.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.analysis.stats import Ecdf
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.traces.mno import generate_mno_dataset
from repro.util.units import bytes_to_megabytes


@dataclass(frozen=True)
class CapCdfResult:
    """The CDF plus the quantile claims the paper makes."""

    ecdf: Ecdf
    fraction_below_10pct: float
    fraction_below_50pct: float
    mean_fraction: float
    mean_daily_free_mb: float

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """CDF sampled at decile points, plus the headline claims."""
        rows = [
            (fmt(x, 1), fmt(self.ecdf.fraction_below(x)))
            for x in [0.05 * i for i in range(1, 21)]
        ]
        table = render_table(
            ["used fraction x", "P(X < x)"],
            rows,
            title="Fig. 10 — CDF of used cap fraction (MNO)",
        )
        claims = (
            f"\nusers below 10% of cap: {self.fraction_below_10pct:.0%} "
            "(paper: 40%)"
            f"\nusers below 50% of cap: {self.fraction_below_50pct:.0%} "
            "(paper: 75%)"
            f"\nmean leftover volume: {self.mean_daily_free_mb:.1f} MB/day "
            "(paper: ~20 MB usable/day)"
        )
        return table + claims


@experiment(
    "fig10",
    title="Fig. 10 — CDF of used cap fraction",
    description="CDF of used cap fraction (Fig. 10)",
    paper_ref="Fig. 10",
    claims=(
        "Paper: 40% of users use <10% of cap; 75% use <50%; ~20 MB/day "
        "of leftover volume.\n"
        "Measured: 40%/76% at the fitted mixture; ~46 MB/day mean "
        "leftover (the paper's 20 MB/day is its chosen *budget*, not "
        "the mean)."
    ),
    bench_params={"n_users": 5000, "seed": 0},
    quick_params={"n_users": 500},
    order=120,
)
def run(n_users: int = 5000, seed: int = 0) -> CapCdfResult:
    """Generate the MNO population and compute the CDF."""
    dataset = generate_mno_dataset(n_users=n_users, seed=seed)
    fractions = dataset.used_fractions_last_month()
    ecdf = Ecdf(fractions.tolist())
    return CapCdfResult(
        ecdf=ecdf,
        fraction_below_10pct=ecdf.fraction_below(0.10),
        fraction_below_50pct=ecdf.fraction_below(0.50),
        mean_fraction=float(fractions.mean()),
        mean_daily_free_mb=bytes_to_megabytes(dataset.mean_daily_free_bytes),
    )
