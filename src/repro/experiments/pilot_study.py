"""The 30-household pilot as a registered experiment.

The pilot lives in :mod:`repro.pilot`; this wrapper gives it a place in
the experiment catalogue so the report, the CLI and the benchmarks reach
it the same way as every table/figure reproduction.
"""

from __future__ import annotations

from repro.experiments.registry import experiment
from repro.pilot import PilotStudy, generate_household_workloads
from repro.pilot.simulation import PilotReport


@experiment(
    "pilot",
    title="Pilot — the 30-household deployment",
    description="the 30-household pilot deployment (S7)",
    paper_ref="§7",
    claims=(
        "Paper: announced ('currently being piloted in 30 "
        "households'), results never reported.\n"
        "Measured: across 30 homes and ~120 transactions in one day, "
        "mean video speedup ~x1.5-1.7, mean upload speedup ~x3, with "
        ">75% of events boosted and ~50 MB/household/day onloaded."
    ),
    bench_params={"n_households": 30, "seed": 1},
    quick_params={"n_households": 4},
    order=260,
)
def run(n_households: int = 30, seed: int = 1) -> PilotReport:
    """Simulate the pilot fleet for one day."""
    plans = generate_household_workloads(
        n_households=n_households, seed=seed
    )
    return PilotStudy(plans, seed=seed).run()
