"""Table 2 — the six measurement locations with three devices.

For each location the paper reports the DSL speed, the aggregate 3G
throughput achieved by three devices at the location's measurement hour,
and the 3GOL/DSL ratio ((DSL + 3G)/DSL). The headline numbers: downlink
boosted up to ×2.67 and uplink up to ×12.93 (Location 1, 1 a.m.); even the
VDSL-like Location 6 still gains a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.experiments.formatting import fmt, fmt_mbps, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import MEASUREMENT_LOCATIONS, LocationProfile
from repro.traces.handsets import measure_cluster_throughput

#: The paper uses three devices for this table.
DEVICES = 3


@dataclass(frozen=True)
class LocationRow:
    """One row of Table 2."""

    name: str
    description: str
    hour: float
    dsl_down_bps: float
    dsl_up_bps: float
    cell_down_bps: float
    cell_up_bps: float

    @property
    def speedup_down(self) -> float:
        """(DSL + 3G)/DSL on the downlink."""
        return (self.dsl_down_bps + self.cell_down_bps) / self.dsl_down_bps

    @property
    def speedup_up(self) -> float:
        """(DSL + 3G)/DSL on the uplink."""
        return (self.dsl_up_bps + self.cell_up_bps) / self.dsl_up_bps


@dataclass(frozen=True)
class LocationTableResult:
    """All rows of Table 2."""

    rows: Tuple[LocationRow, ...]

    def row(self, name: str) -> LocationRow:
        """Look up one location's row."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no row for {name!r}")

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The table in the paper's column layout."""
        table = []
        for row in self.rows:
            table.append(
                [
                    row.name,
                    f"{row.hour:.0f}h",
                    f"{fmt_mbps(row.dsl_down_bps)}/{fmt_mbps(row.dsl_up_bps)}",
                    f"{fmt_mbps(row.cell_down_bps)}/{fmt_mbps(row.cell_up_bps)}",
                    f"{fmt(row.speedup_down)}/{fmt(row.speedup_up)}",
                ]
            )
        return render_table(
            ["location", "time", "DSL Mbps (d/u)", "3G Mbps (d/u)", "3GOL/DSL (d/u)"],
            table,
            title="Table 2 — DSL vs 3GOL throughput with three devices",
        )


@experiment(
    "table02",
    title="Table 2 — six locations, three devices",
    description="six locations, three devices (Table 2)",
    paper_ref="Table 2",
    claims=(
        "Paper: 3GOL/DSL of x2.67/x12.93 (loc 1) down to x1.04/x1.14 "
        "(loc 6, VDSL-class).\n"
        "Measured: loc 1 ~x2.5/x13; loc 6 ~x1.1/x1.4; uplink boosts "
        "dominate everywhere, night/suburban locations gain most."
    ),
    bench_params={"repetitions": 3, "seeds": (0, 1, 2)},
    quick_params={"repetitions": 1, "seeds": (0,)},
    order=50,
)
def run(
    locations: Sequence[LocationProfile] = MEASUREMENT_LOCATIONS,
    repetitions: int = 4,
    seeds: Sequence[int] = (0, 1, 2),
) -> LocationTableResult:
    """Measure each location with three concurrent devices."""
    rows = []
    for location in locations:
        cell = {}
        for direction in ("down", "up"):
            values = []
            for seed in seeds:
                samples = measure_cluster_throughput(
                    location,
                    DEVICES,
                    direction=direction,
                    repetitions=repetitions,
                    seed=seed,
                )
                values.extend(s.aggregate_bps for s in samples)
            cell[direction] = float(np.mean(values))
        rows.append(
            LocationRow(
                name=location.name,
                description=location.description,
                hour=location.measurement_hour,
                dsl_down_bps=location.adsl_down_bps,
                dsl_up_bps=location.adsl_up_bps,
                cell_down_bps=cell["down"],
                cell_up_bps=cell["up"],
            )
        )
    return LocationTableResult(rows=tuple(rows))
