"""Fig. 5 — throughput served per base station (violin plots).

The paper groups the campaign's per-device throughput samples by the base
station serving each device and shows their distributions as violins, with
solid reference lines at the dedicated UMTS channel rates (360 kbps down,
64 kbps up): everything above those lines is HSDPA/HSUPA shared-channel
capacity. Observed range: a station provides roughly 0.7-2.5 Mbps per
device in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.stats import ViolinSummary, summarize_violin
from repro.experiments.formatting import fmt_mbps, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.cellular import HspaParameters
from repro.netsim.topology import MEASUREMENT_LOCATIONS, LocationProfile
from repro.traces.handsets import measure_cluster_throughput


@dataclass(frozen=True)
class StationDistributionResult:
    """Violin summaries per (location, station, direction)."""

    violins: Dict[Tuple[str, str, str], ViolinSummary]
    dedicated_down_bps: float
    dedicated_up_bps: float

    def stations_for(self, location: str) -> Tuple[str, ...]:
        """Base stations with samples at one location."""
        return tuple(
            sorted(
                {
                    station
                    for (loc, station, _), _ in self.violins.items()
                    if loc == location
                }
            )
        )

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """Quartile table standing in for the violins."""
        rows = []
        for (location, station, direction), violin in sorted(
            self.violins.items()
        ):
            rows.append(
                [
                    location,
                    station,
                    direction,
                    fmt_mbps(violin.minimum),
                    fmt_mbps(violin.q1),
                    fmt_mbps(violin.median),
                    fmt_mbps(violin.q3),
                    fmt_mbps(violin.maximum),
                    violin.n,
                ]
            )
        return render_table(
            [
                "location",
                "station",
                "dir",
                "min",
                "q1",
                "median",
                "q3",
                "max",
                "n",
            ],
            rows,
            title=(
                "Fig. 5 — per-device throughput (Mbps) by base station "
                "(violin quartiles)"
            ),
        )


@experiment(
    "fig05",
    title="Fig. 5 — throughput per base station (violins)",
    description="per-base-station distributions (Fig. 5)",
    paper_ref="Fig. 5",
    claims=(
        "Paper: stations serve ~0.7-2.5 Mbps per device, all above "
        "the 360/64 kbps dedicated-channel lines; >= 2 stations per "
        "location.\n"
        "Measured: medians 0.4-2.2 Mbps, all above the dedicated "
        "floors; every studied location shows >= 2 serving stations."
    ),
    bench_params={"days": 2},
    quick_params={"days": 1},
    order=40,
)
def run(
    locations: Sequence[LocationProfile] = MEASUREMENT_LOCATIONS[:6],
    hours: Sequence[float] = (2.0, 8.0, 14.0, 20.0),
    group_size: int = 3,
    days: int = 2,
) -> StationDistributionResult:
    """Collect per-device samples and group them by serving station."""
    samples_by_key: Dict[Tuple[str, str, str], list] = {}
    for location in locations:
        for direction in ("down", "up"):
            for hour in hours:
                for day in range(days):
                    samples = measure_cluster_throughput(
                        location,
                        group_size,
                        direction=direction,
                        hour=hour,
                        repetitions=2,
                        seed=day * 31 + int(hour),
                    )
                    for sample in samples:
                        for rate, station in zip(
                            sample.per_device_bps, sample.stations
                        ):
                            key = (location.name, station, direction)
                            samples_by_key.setdefault(key, []).append(rate)
    params = HspaParameters()
    return StationDistributionResult(
        violins={
            key: summarize_violin(values)
            for key, values in samples_by_key.items()
        },
        dedicated_down_bps=params.dedicated_down_bps,
        dedicated_up_bps=params.dedicated_up_bps,
    )
