"""Shared setup for the §5.2 in-the-wild evaluation (Figs. 7-9, Table 4).

Calibration note (recorded in EXPERIMENTS.md): the paper's reported gains
— e.g. a 38 s pre-buffering reduction at loc2, whose line syncs at
21.64 Mbps and could fetch the whole Q4 video in ~7 s at line rate — are
only possible if the *effective* single-connection throughput to the
origin was far below the line's speedtest rate. The standard mechanism is
TCP receive-window limiting: one connection with a ~64 KB window over a
~150 ms wide-area RTT tops out near 3.5 Mbps regardless of access speed.
We therefore run the wild evaluation with a per-flow cap of 3.5 Mbps on
the wired path (the multipath proxy's parallel connections are each capped
too, but N of them run concurrently, so 3GOL sidesteps the limit exactly
as the real prototype's parallel GETs did).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mobile import OperatingMode
from repro.core.session import OnloadSession
from repro.netsim.topology import (
    EVALUATION_LOCATIONS,
    HouseholdConfig,
    LocationProfile,
)
from repro.util.rng import RngFactory
from repro.util.units import mbps

#: rwnd/RTT cap of one TCP connection to the (distant) origin server
#: (~56 KB window over ~150 ms).
WIRED_FLOW_CAP_BPS = mbps(3.0)
#: The 3G proxy path is also a single TCP connection; HSPA RTTs are higher
#: but the radio link is the tighter constraint, so the cap rarely binds.
CELLULAR_FLOW_CAP_BPS = mbps(3.0)
#: §5.2 runs start "around 9.00 am" on weekdays.
EVAL_START_HOUR = 9.0


def wild_config(
    n_phones: int, seed: int, connected_start: bool = False
) -> HouseholdConfig:
    """Household configuration of the wild evaluation."""
    return HouseholdConfig(
        n_phones=n_phones,
        wired_flow_cap_bps=WIRED_FLOW_CAP_BPS,
        cellular_flow_cap_bps=CELLULAR_FLOW_CAP_BPS,
        seed=seed,
    )


def make_session(
    location: LocationProfile,
    n_phones: int,
    seed: int,
    connected_start: bool = False,
) -> OnloadSession:
    """Build one evaluation session; optionally force radios into DCH.

    ``connected_start`` reproduces the paper's "H" mode, where a train of
    ICMP packets put the radio in a connected state just before the
    transaction; the default is the idle ("3G") start. The seed is salted
    with the location name so two locations with identical parameters
    still see independent radio conditions, as distinct homes would.
    """
    seed = RngFactory(seed).derive_seed(location.name) % 1_000_000
    session = OnloadSession.for_location(
        location,
        n_phones=n_phones,
        seed=seed,
        mode=OperatingMode.MULTI_PROVIDER,
        # The paper's own handsets ran on 10 GB plans and §5 enforces no
        # 3GOL budget; an effectively-unlimited tracker keeps the phones
        # advertising throughout.
        daily_budget_bytes=1e13,
        config=wild_config(n_phones, seed),
    )
    if connected_start:
        now = session.network.time
        for phone in session.household.phones:
            phone.radio.force_connected(now)
    return session


def eval_locations() -> Sequence[LocationProfile]:
    """The five Table 4 locations."""
    return EVALUATION_LOCATIONS
