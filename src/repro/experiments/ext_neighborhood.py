"""Extension: 3GOL households competing for the same cell.

Fig. 11c models adoption load analytically; this experiment makes it
concrete at flow level: K households in one neighbourhood all run 3GOL
*simultaneously* (the evening video rush), sharing both the DSLAM
backhaul and the cellular deployment. As more homes boost at once, the
shared HSDPA channels split further and the per-home benefit erodes —
the congestion argument behind the paper's permit backend (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.neighborhood import Neighborhood
from repro.netsim.topology import LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

LOCATION = LocationProfile(
    name="nbh",
    description="Neighbourhood contention testbed",
    adsl_down_bps=mbps(3.0),
    adsl_up_bps=mbps(0.4),
    signal_dbm=-85.0,
    n_stations=2,
    peak_utilization=0.45,
    measurement_hour=21.0,
)

DEFAULT_ACTIVE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class ContentionPoint:
    """Mean per-home download time with K homes boosting at once."""

    active_homes: int
    mean_time_s: float
    baseline_time_s: float

    @property
    def speedup(self) -> float:
        """Per-home speedup over the unassisted baseline."""
        return self.baseline_time_s / self.mean_time_s


@dataclass(frozen=True)
class NeighborhoodResult:
    """Speedup vs concurrent-adopter count."""

    points: Tuple[ContentionPoint, ...]

    def speedup_erodes(self) -> bool:
        """More simultaneous adopters -> smaller per-home benefit."""
        speedups = [p.speedup for p in self.points]
        return speedups[-1] < speedups[0]

    def still_beneficial_at_max(self) -> bool:
        """Even the crowded cell leaves everyone better off."""
        return self.points[-1].speedup > 1.0

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One row per adopter count."""
        rows = [
            (
                p.active_homes,
                fmt(p.baseline_time_s, 1),
                fmt(p.mean_time_s, 1),
                f"x{p.speedup:.2f}",
            )
            for p in self.points
        ]
        return render_table(
            ["boosting homes", "ADSL alone (s)", "3GOL (s)", "speedup"],
            rows,
            title=(
                "Extension — simultaneous 3GOL adopters sharing one cell "
                "(Q4 video, 2 phones/home)"
            ),
        )


def _run_round(
    active_homes: int, use_3gol: bool, seed: int
) -> List[float]:
    """All active homes download the Q4 video at once; per-home times."""
    video = make_bipbop_video()
    playlist = video.playlist("Q4")
    neighborhood = Neighborhood(
        LOCATION,
        n_homes=active_homes,
        phones_per_home=2,
        dslam_backhaul_bps=mbps(60.0),
        seed=seed,
    )
    results: Dict[str, List[float]] = {}
    runners = []
    for home in neighborhood.homes:
        items = [
            TransferItem(
                f"{home.home_id}:{s.uri}", s.size_bytes, {"index": s.index}
            )
            for s in playlist.segments
        ]
        runner = TransactionRunner(
            neighborhood.network,
            neighborhood.download_paths(home, use_3gol=use_3gol),
            make_policy("GRD"),
        )
        runner.start(Transaction(items, name=f"{home.home_id}-dl"))
        runners.append((home.home_id, runner))
    network = neighborhood.network
    deadline = network.time + 3600.0
    while not all(runner.finished for _, runner in runners):
        if not network.step(max_time=deadline):
            break
    times = []
    for _home_id, runner in runners:
        result = runner.collect_result()
        times.append(result.total_time)
    return times


@experiment(
    "ext-neighborhood",
    title="Extension — simultaneous adopters on one cell",
    description="extension: adopters sharing one cell",
    paper_ref="Fig. 11c",
    claims=(
        "Paper: Fig. 11c models adoption load analytically.\n"
        "Measured at flow level: per-home speedup erodes from ~x2.4 "
        "(lone adopter) to ~x1.4 (eight homes boosting at once on the "
        "same cell) but never goes negative — motivating the permit "
        "backend rather than undermining 3GOL."
    ),
    bench_params={"seeds": (0, 1, 2)},
    quick_params={"seeds": (0,)},
    order=220,
)
def run(
    active_counts: Sequence[int] = DEFAULT_ACTIVE_COUNTS,
    seeds: Sequence[int] = (0, 1, 2),
) -> NeighborhoodResult:
    """Sweep the number of simultaneously-boosting homes."""
    points = []
    for count in active_counts:
        boosted = RunningStats()
        baseline = RunningStats()
        for seed in seeds:
            boosted.extend(_run_round(count, use_3gol=True, seed=seed))
            baseline.extend(_run_round(count, use_3gol=False, seed=seed))
        points.append(
            ContentionPoint(
                active_homes=count,
                mean_time_s=boosted.mean,
                baseline_time_s=baseline.mean,
            )
        )
    return NeighborhoodResult(points=tuple(points))
