"""The experiment registry: single source of truth for the catalogue.

Every experiment module self-registers by decorating its ``run``
function::

    @experiment(
        "fig06",
        title="Fig. 6 — scheduler comparison (2 Mbps testbed)",
        description="GRD vs RR vs MIN schedulers (Fig. 6)",
        paper_ref="§5.1, Fig. 6",
        claims="Paper: ...\\nMeasured: ...",
        bench_params={"repetitions": 10},
        quick_params={"repetitions": 2},
        order=70,
    )
    def run(...): ...

The CLI (``repro list`` / ``repro run``), the report generator
(:mod:`repro.experiments.report`) and the benchmark suite all read this
registry instead of keeping their own experiment tables.

Registration is import-driven: decorating registers the spec, and
:func:`discover` imports every module under :mod:`repro.experiments` so
the registry is complete before first use. Accessors call it implicitly.

The structured-result contract every registered ``run()`` must honour:
the returned object exposes ``render()`` (aligned plain-text table, what
the report embeds) and ``to_dict()`` (JSON-ready payload, what
``repro run --json`` prints); see :mod:`repro.util.serialize`.
"""

from __future__ import annotations

import contextlib
import importlib
import inspect
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.util.serialize import jsonable

__all__ = [
    "DuplicateExperimentError",
    "ExperimentSpec",
    "RegistryError",
    "UnknownExperimentError",
    "all_experiments",
    "discover",
    "experiment",
    "experiment_ids",
    "get",
    "jsonable",
    "temporary_experiment",
]


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateExperimentError(RegistryError):
    """Two experiments tried to register the same id."""


class UnknownExperimentError(RegistryError):
    """Lookup of an id nothing registered."""

    def __init__(
        self, experiment_id: str, available: Tuple[str, ...]
    ) -> None:
        self.experiment_id = experiment_id
        self.available = available
        super().__init__(
            f"unknown experiment {experiment_id!r}; available: "
            + ", ".join(available)
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: metadata plus its ``run`` callable."""

    id: str
    #: Section title in EXPERIMENTS.md.
    title: str
    #: One-line catalogue entry for ``repro list``.
    description: str
    #: Where in the paper the claim lives (e.g. ``"§5.1, Fig. 6"``).
    paper_ref: str
    #: Paper-vs-measured commentary embedded in the report.
    claims: str
    #: Benchmark-size keyword arguments (what the report and the
    #: ``benchmarks/`` suite run).
    bench_params: Mapping[str, Any]
    #: Reduced-size overrides for smoke runs (``repro run --quick``).
    quick_params: Mapping[str, Any]
    #: Report ordering key (ties broken by id).
    order: int
    #: The experiment's ``run`` function.
    func: Callable[..., Any] = field(repr=False)

    @property
    def module(self) -> str:
        """Module the experiment lives in."""
        return self.func.__module__

    def accepted_params(self) -> Tuple[str, ...]:
        """Keyword names ``run()`` accepts."""
        return tuple(inspect.signature(self.func).parameters)

    def accepts(self, name: str) -> bool:
        """Whether ``run()`` takes a keyword named ``name``."""
        return name in inspect.signature(self.func).parameters

    def params(self, quick: bool = False) -> Dict[str, Any]:
        """The benchmark parameter set, optionally at quick sizes."""
        merged = dict(self.bench_params)
        if quick:
            merged.update(self.quick_params)
        return merged

    def execute(self, **overrides: Any) -> Any:
        """Run at benchmark size with ``overrides`` applied on top."""
        return self.func(**{**self.params(), **overrides})


_REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    experiment_id: str,
    *,
    title: str,
    description: str,
    paper_ref: str = "",
    claims: str = "",
    bench_params: Optional[Mapping[str, Any]] = None,
    quick_params: Optional[Mapping[str, Any]] = None,
    order: int = 0,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated ``run`` function; returns it unchanged."""

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        spec = ExperimentSpec(
            id=experiment_id,
            title=title,
            description=description,
            paper_ref=paper_ref,
            claims=claims,
            bench_params=dict(bench_params or {}),
            quick_params=dict(quick_params or {}),
            order=order,
            func=func,
        )
        register(spec)
        func.experiment_spec = spec  # type: ignore[attr-defined]
        return func

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add ``spec`` to the registry; duplicate ids are an error."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None:
        raise DuplicateExperimentError(
            f"experiment id {spec.id!r} registered twice "
            f"({existing.module} and {spec.module})"
        )
    _REGISTRY[spec.id] = spec


#: Modules under repro.experiments that are infrastructure, not
#: experiments.
_NON_EXPERIMENT_MODULES = frozenset(
    {"catalogue", "formatting", "registry", "report", "runner", "wild"}
)

_discovered = False


def discover() -> None:
    """Import every experiment module so the registry is complete."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    import repro.experiments as package

    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_") or info.name in _NON_EXPERIMENT_MODULES:
            continue
        importlib.import_module(f"repro.experiments.{info.name}")


def experiment_ids() -> Tuple[str, ...]:
    """All registered ids, in report order."""
    return tuple(spec.id for spec in all_experiments())


def all_experiments() -> Tuple[ExperimentSpec, ...]:
    """Every registered spec, ordered by (order, id)."""
    discover()
    return tuple(
        sorted(_REGISTRY.values(), key=lambda spec: (spec.order, spec.id))
    )


def get(experiment_id: str) -> ExperimentSpec:
    """The spec for ``experiment_id``; raises UnknownExperimentError."""
    discover()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            experiment_id, experiment_ids()
        ) from None


@contextlib.contextmanager
def temporary_experiment(spec: ExperimentSpec) -> Iterator[ExperimentSpec]:
    """Register ``spec`` for the duration of a ``with`` block (tests)."""
    register(spec)
    try:
        yield spec
    finally:
        _REGISTRY.pop(spec.id, None)
