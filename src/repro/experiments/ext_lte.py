"""Extension: 3GOL over 4G/LTE (§2.3).

"If 4G is available, the concept of 3GOL is even more compelling. With
the reduced latency, and the large increase of bandwidth, the period of
powerboosting time might be extremely short, reducing the overhead added
on the cellular network."

This experiment quantifies that claim: the same household and video, with
the phones' cellular substrate swapped from HSPA to early-LTE parameters
(and LTE's much faster RRC), comparing pre-buffer and total download
times plus the time the phones spend occupying the cellular network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.cellular import (
    HspaParameters,
    LTE_PARAMETERS,
    LTE_RRC_PARAMETERS,
)
from repro.netsim.radio import RrcParameters
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import mbps
from repro.web.hls import make_bipbop_video

#: The household of the comparison: a mid-range ADSL home.
LOCATION = LocationProfile(
    name="lte-home",
    description="LTE extension testbed (6 Mbps ADSL)",
    adsl_down_bps=mbps(6.0),
    adsl_up_bps=mbps(0.6),
    signal_dbm=-85.0,
    peak_utilization=0.5,
    measurement_hour=20.0,
)


@dataclass(frozen=True)
class GenerationCell:
    """Results for one radio generation."""

    total_time_s: float
    prebuffer_time_s: float
    cell_busy_s: float


@dataclass(frozen=True)
class LteComparisonResult:
    """HSPA vs LTE powerboost of the same video."""

    cells: Dict[str, GenerationCell]
    adsl_alone_s: float
    adsl_prebuffer_s: float

    def speedup(self, generation: str) -> float:
        """Total-download speedup over ADSL alone."""
        return self.adsl_alone_s / self.cells[generation].total_time_s

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The comparison table."""
        rows = [
            (
                "ADSL alone",
                fmt(self.adsl_alone_s, 1),
                fmt(self.adsl_prebuffer_s, 1),
                "-",
                "x1.0",
            )
        ]
        for generation, cell in sorted(self.cells.items()):
            rows.append(
                (
                    generation,
                    fmt(cell.total_time_s, 1),
                    fmt(cell.prebuffer_time_s, 1),
                    fmt(cell.cell_busy_s, 1),
                    f"x{self.speedup(generation):.1f}",
                )
            )
        return render_table(
            [
                "configuration",
                "total (s)",
                "pre-buffer (s)",
                "cell busy (s)",
                "speedup",
            ],
            rows,
            title="Extension §2.3 — 3GOL over HSPA vs LTE (Q4, 2 phones)",
        )


def _run_one(
    params: HspaParameters,
    rrc: RrcParameters,
    n_phones: int,
    seeds: Sequence[int],
) -> Tuple[RunningStats, RunningStats, RunningStats]:
    video = make_bipbop_video()
    playlist = video.playlist("Q4")
    items = [
        TransferItem(s.uri, s.size_bytes, {"index": s.index})
        for s in playlist.segments
    ]
    prebuffer_uris = [
        s.uri for s in playlist.segments_for_prebuffer(0.2)
    ]
    totals, prebuffers, busy = RunningStats(), RunningStats(), RunningStats()
    for seed in seeds:
        config = HouseholdConfig(n_phones=n_phones, seed=seed, hspa=params)
        household = Household(LOCATION, config)
        for phone in household.phones:
            phone.radio.params = rrc
        paths = household.download_paths() if n_phones else [
            household.adsl_down_path()
        ]
        runner = TransactionRunner(
            household.network, paths, make_policy("GRD")
        )
        result = runner.run(Transaction(items))
        totals.add(result.total_time)
        prebuffers.add(result.time_to_complete(prebuffer_uris))
        # Cellular occupancy: the window during which phones delivered
        # winning copies — §2.3's "period of powerboosting time".
        cellular_names = {p.name for p in paths if p.is_cellular}
        cellular_records = [
            r for r in result.records.values()
            if r.path_name in cellular_names
        ]
        if cellular_records:
            busy.add(
                max(r.completed_at for r in cellular_records)
                - result.started_at
            )
        else:
            busy.add(0.0)
    return totals, prebuffers, busy


@experiment(
    "ext-lte",
    title="Extension §2.3 — 3GOL over LTE",
    description="extension: 3GOL over LTE (S2.3)",
    paper_ref="§2.3",
    claims=(
        "Paper (prose only): with 4G 'the period of powerboosting "
        "time might be extremely short'.\n"
        "Measured: LTE halves the download again over HSPA-3GOL and "
        "shrinks the cellular-occupancy window by >2x."
    ),
    bench_params={"seeds": (0, 1, 2, 3)},
    quick_params={"seeds": (0,)},
    order=180,
)
def run(seeds: Sequence[int] = (0, 1, 2, 3)) -> LteComparisonResult:
    """Compare ADSL alone, HSPA 3GOL and LTE 3GOL."""
    adsl_totals, adsl_prebuffers, _ = _run_one(
        HspaParameters(), RrcParameters(), n_phones=0, seeds=seeds
    )
    hspa = _run_one(HspaParameters(), RrcParameters(), 2, seeds)
    lte = _run_one(LTE_PARAMETERS, LTE_RRC_PARAMETERS, 2, seeds)
    return LteComparisonResult(
        cells={
            "3GOL over HSPA": GenerationCell(
                hspa[0].mean, hspa[1].mean, hspa[2].mean
            ),
            "3GOL over LTE": GenerationCell(
                lte[0].mean, lte[1].mean, lte[2].mean
            ),
        },
        adsl_alone_s=adsl_totals.mean,
        adsl_prebuffer_s=adsl_prebuffers.mean,
    )
