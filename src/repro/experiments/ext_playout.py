"""Extension: covering the playout phase (§4.1.1 future work).

The paper's scheduler optimises the whole transaction; during *playout*
what matters is that each segment arrives before the playhead needs it.
This experiment streams a video whose bitrate is close to the ADSL line's
capacity — the regime where the unassisted player stalls — and compares
viewer-experience metrics (startup delay, stall count, stall time) for:

* the sequential player on ADSL alone;
* 3GOL with the paper's greedy scheduler (GRD);
* 3GOL with the deadline-aware extension (DLN), which duplicates the
  segment the player is about to need instead of the oldest one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.items import Transaction, TransferItem
from repro.core.playback import PlayoutSimulator, completion_times_from_result
from repro.core.scheduler import TransactionRunner, make_policy
from repro.core.scheduler.deadline import attach_deadlines
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.stats import RunningStats
from repro.util.units import kbps, mbps
from repro.web.hls import VideoAsset, VideoQuality

#: A line *below* the video bitrate: a 1.5 Mbps rendition on a 1.1 Mbps
#: line cannot stream unassisted (the regime that motivates onloading),
#: and even with one variable phone the aggregate occasionally dips, so
#: the scheduling policy visibly matters.
LOCATION = LocationProfile(
    name="playout-home",
    description="Playout-extension testbed (tight ADSL)",
    adsl_down_bps=mbps(1.1),
    adsl_up_bps=mbps(0.3),
    signal_dbm=-85.0,
    peak_utilization=0.5,
    measurement_hour=21.0,
)

CONFIGS = ("ADSL", "GRD", "DLN")


def make_tight_video() -> VideoAsset:
    """A 200 s rendition at 1.5 Mbps — above the line's 1.1 Mbps."""
    return VideoAsset(
        "tight",
        duration_s=200.0,
        segment_s=10.0,
        qualities=(VideoQuality("HD", kbps(1500.0)),),
    )


@dataclass(frozen=True)
class PlayoutCell:
    """Viewer metrics for one configuration."""

    startup_delay_s: float
    stall_count: float
    stall_time_s: float
    smooth_fraction: float


@dataclass(frozen=True)
class PlayoutComparisonResult:
    """Metrics per configuration."""

    cells: Dict[str, PlayoutCell]

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """The comparison table."""
        rows = [
            (
                config,
                fmt(cell.startup_delay_s, 1),
                fmt(cell.stall_count, 1),
                fmt(cell.stall_time_s, 1),
                f"{cell.smooth_fraction:.0%}",
            )
            for config, cell in (
                (c, self.cells[c]) for c in CONFIGS
            )
        ]
        return render_table(
            [
                "configuration",
                "startup (s)",
                "stalls",
                "stall time (s)",
                "smooth runs",
            ],
            rows,
            title=(
                "Extension §4.1.1 — playout-phase metrics, 1.5 Mbps video "
                "on a 1.1 Mbps line (1 phone)"
            ),
        )


@experiment(
    "ext-playout",
    title="Extension §4.1.1 — playout-phase coverage",
    description="extension: playout-phase coverage",
    paper_ref="§4.1.1",
    claims=(
        "Paper (future work): extend the scheduler over the playout "
        "phase.\n"
        "Measured: a 1.5 Mbps rendition on a 1.1 Mbps line stalls "
        "~16 times unassisted; 3GOL (GRD or the deadline-aware DLN) "
        "plays it smoothly with ~2x faster startup."
    ),
    bench_params={"seeds": (0, 1, 2, 3, 4, 5, 6, 7)},
    quick_params={"seeds": (0, 1)},
    order=200,
)
def run(
    seeds: Sequence[int] = tuple(range(8)),
    prebuffer_fraction: float = 0.1,
) -> PlayoutComparisonResult:
    """Stream the tight video under each configuration."""
    video = make_tight_video()
    playlist = video.playlists["HD"]
    cells: Dict[str, PlayoutCell] = {}
    for config in CONFIGS:
        startup = RunningStats()
        stall_count = RunningStats()
        stall_time = RunningStats()
        smooth = RunningStats()
        for seed in seeds:
            household = Household(
                LOCATION, HouseholdConfig(n_phones=1, seed=seed)
            )
            items = attach_deadlines(
                [
                    TransferItem(
                        s.uri,
                        s.size_bytes,
                        {"index": s.index, "duration_s": s.duration_s},
                    )
                    for s in playlist.segments
                ]
            )
            if config == "ADSL":
                paths = [household.adsl_down_path()]
                policy = make_policy("GRD")
            else:
                paths = household.download_paths(n_phones=1)
                policy = make_policy(config)
            runner = TransactionRunner(household.network, paths, policy)
            result = runner.run(Transaction(items, name=f"{config}-{seed}"))
            report = PlayoutSimulator(
                playlist, prebuffer_fraction=prebuffer_fraction
            ).replay(completion_times_from_result(result))
            startup.add(report.startup_delay)
            stall_count.add(report.stall_count)
            stall_time.add(report.total_stall_time)
            smooth.add(1.0 if report.smooth else 0.0)
        cells[config] = PlayoutCell(
            startup_delay_s=startup.mean,
            stall_count=stall_count.mean,
            stall_time_s=stall_time.mean,
            smooth_fraction=smooth.mean,
        )
    return PlayoutComparisonResult(cells=cells)
