"""Parallel, cache-aware execution engine for registered experiments.

:func:`run_experiments` executes any subset of the registry, serially or
on a :class:`~concurrent.futures.ProcessPoolExecutor`, with

* per-experiment wall-time accounting,
* failure isolation — one crashing experiment becomes an ``error``
  outcome instead of killing the batch, and
* an optional on-disk result cache keyed by (experiment id, parameter
  set, source digest), so re-runs skip experiments whose code and
  parameters have not changed.

The cache lives in ``.repro_cache/`` under the working directory
(override with the ``REPRO_CACHE_DIR`` environment variable). The source
digest hashes every ``*.py`` file of the installed :mod:`repro` package,
so *any* source change invalidates *all* cached results — coarse, but it
can never serve a stale result.

Outcomes come back in request order regardless of completion order,
which is what lets ``repro report --jobs N`` write byte-identical output
for every N.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments import registry
from repro.obs.capture import capture
from repro.util.serialize import jsonable

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ExperimentOutcome",
    "ResultCache",
    "run_experiments",
    "source_digest",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_ERROR = "error"

_source_digest: Optional[str] = None


def source_digest() -> str:
    """Digest of every ``repro/**/*.py`` source file (cached)."""
    global _source_digest
    if _source_digest is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _source_digest = digest.hexdigest()
    return _source_digest


@dataclass
class ExperimentOutcome:
    """What one experiment produced (or how it failed)."""

    experiment_id: str
    #: ``"ok"`` (freshly run), ``"cached"`` (served from disk) or
    #: ``"error"`` (crashed; see :attr:`error`).
    status: str
    #: Wall-clock seconds the experiment took. Zero when cached.
    elapsed_s: float
    #: The parameter set ``run()`` was called with.
    params: Dict[str, Any] = field(default_factory=dict)
    #: ``result.render()`` output; empty on error.
    rendered: str = ""
    #: ``result.to_dict()`` payload; ``None`` on error.
    payload: Optional[Dict[str, Any]] = None
    #: Formatted traceback when :attr:`status` is ``"error"``.
    error: str = ""
    #: Deterministic trace export (JSONL lines) when the experiment ran
    #: under ``trace=True``; ``None`` otherwise. Deliberately *not* part
    #: of :meth:`to_dict` — the ``repro run --json`` contract is stable.
    trace_lines: Optional[List[str]] = None
    #: Wall-clock phase timings (``run_s``, ``render_s``,
    #: ``serialize_s``) of a fresh run, surfaced by ``repro run
    #: --profile`` and the bench CLI. Nondeterministic, so also excluded
    #: from :meth:`to_dict`.
    profile: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        """Whether a result is available (fresh or cached)."""
        return self.status in (STATUS_OK, STATUS_CACHED)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record, the unit of ``repro run --json`` output."""
        return {
            "experiment": self.experiment_id,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "params": jsonable(self.params),
            "result": self.payload,
            "error": self.error or None,
        }


class ResultCache:
    """On-disk JSON cache of experiment outcomes.

    One file per (experiment id, parameter set, source digest) triple;
    the digest is part of the key, so stale entries are simply never
    read again and old files can be deleted at will.
    """

    def __init__(self, root: Optional[os.PathLike[str]] = None) -> None:
        self.root = Path(
            root
            if root is not None
            else os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        )

    def key(self, experiment_id: str, params: Mapping[str, Any]) -> str:
        """Cache key for one experiment invocation."""
        record = json.dumps(
            {
                "experiment": experiment_id,
                "params": jsonable(dict(params)),
                "source": source_digest(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(record.encode()).hexdigest()

    def _path(self, experiment_id: str, key: str) -> Path:
        return self.root / f"{experiment_id}-{key[:16]}.json"

    def get(
        self, experiment_id: str, params: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The cached entry, or ``None`` on miss/corruption."""
        path = self._path(experiment_id, self.key(experiment_id, params))
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "rendered" not in entry:
            return None
        return entry

    def put(
        self,
        experiment_id: str,
        params: Mapping[str, Any],
        entry: Mapping[str, Any],
    ) -> None:
        """Store ``entry``; cache failures are non-fatal."""
        path = self._path(experiment_id, self.key(experiment_id, params))
        with contextlib.suppress(OSError):
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(dict(entry)), encoding="utf-8")
            tmp.replace(path)


def _reset_entity_ids() -> None:
    """Restart the process-global entity id streams.

    Transaction/flow/device ids leak into trace exports (``txn-N`` is a
    trace field), so an experiment's bytes must not depend on what else
    ran earlier in this process: every execution starts its id streams
    at 1, exactly like a fresh interpreter.
    """
    from repro.core.items import Transaction
    from repro.netsim.cellular import CellularDevice
    from repro.netsim.fluid import Flow

    Transaction._reset_ids()
    Flow._reset_ids()
    CellularDevice._reset_ids()


def _execute(
    experiment_id: str, params: Dict[str, Any], trace: bool = False
) -> Dict[str, Any]:
    """Run one experiment; returns the cache-entry-shaped record.

    With ``trace=True`` the experiment body runs under an
    :func:`~repro.obs.capture.capture` scope, and the record carries the
    deterministic JSONL export in ``"trace"``. Traces travel in-band
    through the worker record, so parallel runs see the same bytes as
    serial ones.
    """
    spec = registry.get(experiment_id)
    _reset_entity_ids()
    started = time.perf_counter()
    if trace:
        with capture() as instrumentation:
            result = spec.func(**params)
        trace_export = instrumentation.export_lines(
            experiment_id=experiment_id, params=jsonable(params)
        )
    else:
        result = spec.func(**params)
        trace_export = None
    ran = time.perf_counter()
    rendered = result.render()
    payload = result.to_dict()
    rendered_at = time.perf_counter()
    # Fail here, inside the isolation boundary, if a result's payload is
    # not actually JSON-serializable.
    json.dumps(payload)
    finished = time.perf_counter()
    record: Dict[str, Any] = {
        "rendered": rendered,
        "payload": payload,
        "elapsed_s": ran - started,
        "profile": {
            "run_s": ran - started,
            "render_s": rendered_at - ran,
            "serialize_s": finished - rendered_at,
        },
    }
    if trace_export is not None:
        record["trace"] = trace_export
    return record


def _worker(
    experiment_id: str, params: Dict[str, Any], trace: bool = False
) -> Dict[str, Any]:
    """Pool entry point: never raises, reports crashes in-band."""
    try:
        return _execute(experiment_id, params, trace=trace)
    except BaseException:  # noqa: BLE001 — isolation boundary
        return {"error": traceback.format_exc()}


def _outcome(
    experiment_id: str,
    params: Dict[str, Any],
    record: Mapping[str, Any],
    status_ok: str = STATUS_OK,
) -> ExperimentOutcome:
    """Build the outcome for one worker/cache record."""
    if record.get("error"):
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status=STATUS_ERROR,
            elapsed_s=float(record.get("elapsed_s", 0.0)),
            params=params,
            error=str(record["error"]),
        )
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status=status_ok,
        elapsed_s=float(record.get("elapsed_s", 0.0)),
        params=params,
        rendered=str(record.get("rendered", "")),
        payload=record.get("payload"),
        trace_lines=record.get("trace"),
        profile=record.get("profile"),
    )


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """Fork when available, so dynamically registered experiments (and
    monkeypatched modules, in tests) are visible to the workers."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return None


def run_experiments(
    ids: Sequence[str],
    jobs: int = 1,
    quick: bool = False,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    cache: Optional[ResultCache] = None,
    on_complete: Optional[Callable[[ExperimentOutcome], None]] = None,
    trace: bool = False,
) -> List[ExperimentOutcome]:
    """Execute ``ids`` and return their outcomes in request order.

    ``jobs`` > 1 fans the experiments out over a process pool.
    ``quick`` selects each spec's reduced-size parameter set.
    ``overrides`` maps experiment id to extra keyword arguments layered
    on top of the spec's parameters. ``cache``, when given, is consulted
    before running and updated after. ``on_complete`` fires once per
    experiment, in completion order. ``trace`` runs every experiment
    under an instrumentation capture and attaches the deterministic
    JSONL export to each outcome (``trace_lines``); trace runs bypass
    the cache entirely — a cached entry has no trace, and a traced
    entry must never be served as a plain one.
    """
    if trace:
        cache = None
    params_by_id: Dict[str, Dict[str, Any]] = {}
    for experiment_id in ids:
        spec = registry.get(experiment_id)  # raises on unknown ids
        params = spec.params(quick=quick)
        params.update((overrides or {}).get(experiment_id, {}))
        params_by_id[experiment_id] = params

    outcomes: Dict[str, ExperimentOutcome] = {}

    def finish(outcome: ExperimentOutcome) -> None:
        outcomes[outcome.experiment_id] = outcome
        if outcome.ok and outcome.status == STATUS_OK and cache is not None:
            cache.put(
                outcome.experiment_id,
                outcome.params,
                {
                    "rendered": outcome.rendered,
                    "payload": outcome.payload,
                    "elapsed_s": outcome.elapsed_s,
                },
            )
        if on_complete is not None:
            on_complete(outcome)

    pending: List[str] = []
    for experiment_id in ids:
        params = params_by_id[experiment_id]
        entry = cache.get(experiment_id, params) if cache else None
        if entry is not None:
            finish(
                ExperimentOutcome(
                    experiment_id=experiment_id,
                    status=STATUS_CACHED,
                    elapsed_s=0.0,
                    params=params,
                    rendered=str(entry.get("rendered", "")),
                    payload=entry.get("payload"),
                )
            )
        else:
            pending.append(experiment_id)

    if pending and jobs <= 1:
        for experiment_id in pending:
            params = params_by_id[experiment_id]
            finish(
                _outcome(
                    experiment_id,
                    params,
                    _worker(experiment_id, params, trace=trace),
                )
            )
    elif pending:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=_pool_context(),
        ) as pool:
            futures = {
                pool.submit(
                    _worker,
                    experiment_id,
                    params_by_id[experiment_id],
                    trace,
                ): experiment_id
                for experiment_id in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    experiment_id = futures[future]
                    params = params_by_id[experiment_id]
                    try:
                        record = future.result()
                    except BaseException:  # pool/pickling failure
                        record = {"error": traceback.format_exc()}
                    finish(_outcome(experiment_id, params, record))

    return [outcomes[experiment_id] for experiment_id in ids]
