"""Fig. 8 — total video download-time reduction per location (§5.2).

For all five evaluation locations and the four configurations (one/two
phones, idle/connected start), the paper reports the percentage reduction
in downloading the *entire* 200 s video, averaged over the four qualities:
reductions span 38% to 72% (speedups ×1.5 to ×4.1), the second device
always helps (+5.9% to +26%), and connected-mode starts bring mostly
marginal gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.stats import reduction_percent
from repro.experiments import wild
from repro.experiments.fig07_prebuffer import CONFIGS, QUALITIES, config_label
from repro.experiments.formatting import fmt, render_table
from repro.experiments.registry import experiment, jsonable
from repro.netsim.topology import EVALUATION_LOCATIONS, LocationProfile
from repro.util.stats import RunningStats


@dataclass(frozen=True)
class DownloadReductionResult:
    """Mean % download-time reduction per (location, config)."""

    reductions: Dict[Tuple[str, str], float]
    configs: Tuple[str, ...]

    def reduction(self, location: str, config: str) -> float:
        """One bar of the figure (percent)."""
        return self.reductions[(location, config)]

    def speedup(self, location: str, config: str) -> float:
        """The same bar expressed as a speedup factor."""
        return 100.0 / (100.0 - self.reduction(location, config))

    def second_phone_benefit(self, location: str, connected: bool) -> float:
        """Percentage-point gain of the second phone."""
        mode = "H" if connected else "3G"
        return self.reduction(location, f"{mode}_2PH") - self.reduction(
            location, f"{mode}_1PH"
        )

    def to_dict(self) -> dict:
        """JSON-ready payload of every field (``repro run --json``)."""
        return jsonable(self)

    def render(self) -> str:
        """One row per location."""
        locations = sorted({loc for loc, _ in self.reductions})
        rows = []
        for location in locations:
            rows.append(
                [location]
                + [
                    fmt(self.reductions[(location, config)], 1)
                    for config in self.configs
                ]
            )
        return render_table(
            ["location"] + list(self.configs),
            rows,
            title="Fig. 8 — total video download time reduction (%)",
        )


@experiment(
    "fig08",
    title="Fig. 8 — total download-time reduction per location",
    description="download-time reductions (Fig. 8)",
    paper_ref="Fig. 8",
    claims=(
        "Paper: 38-72% reductions (x1.5-x4.1).\n"
        "Measured: ~28-58% (x1.4-x2.4) — same structure (every config "
        "gains, 2nd phone always helps, H marginal, best location is "
        "the good-signal one) but compressed magnitudes: our HSPA "
        "model is calibrated to Tables 2-3, which caps what two "
        "phones can add."
    ),
    bench_params={"repetitions": 4},
    quick_params={"repetitions": 1},
    order=100,
)
def run(
    locations: Sequence[LocationProfile] = EVALUATION_LOCATIONS,
    repetitions: int = 5,
) -> DownloadReductionResult:
    """Average the per-quality reductions at each location/config."""
    config_labels = tuple(config_label(n, c) for n, c in CONFIGS)
    reductions: Dict[Tuple[str, str], float] = {}
    for location in locations:
        baselines: Dict[str, float] = {}
        for quality in QUALITIES:
            stats = RunningStats()
            for seed in range(repetitions):
                session = wild.make_session(location, n_phones=1, seed=seed)
                session.host_bipbop()
                report = session.download_video(
                    "bipbop", quality, use_3gol=False, prebuffer_fraction=None
                )
                stats.add(report.total_time)
            baselines[quality] = stats.mean
        for n_phones, connected in CONFIGS:
            per_quality = RunningStats()
            for quality in QUALITIES:
                stats = RunningStats()
                for seed in range(repetitions):
                    session = wild.make_session(
                        location,
                        n_phones=n_phones,
                        seed=seed,
                        connected_start=connected,
                    )
                    session.host_bipbop()
                    report = session.download_video(
                        "bipbop", quality, prebuffer_fraction=None
                    )
                    stats.add(report.total_time)
                per_quality.add(
                    reduction_percent(baselines[quality], stats.mean)
                )
            reductions[(location.name, config_label(n_phones, connected))] = (
                per_quality.mean
            )
    return DownloadReductionResult(
        reductions=reductions, configs=config_labels
    )
