"""Trace-driven load analyses (§6, Fig. 11).

Three analyses on the synthetic DSLAM/MNO traces, all analytic (no fluid
simulation — the paper runs these over millions of sessions):

* :func:`per_user_speedups` — Fig. 11 (a): latency improvement per user
  when every video is boosted under a daily cellular budget;
* :func:`onloaded_load_series` — Fig. 11 (b): traffic onloaded onto the
  cellular network through the day, budgeted vs unbudgeted, against the
  deployment's backhaul capacity;
* :func:`adoption_traffic_increase` — Fig. 11 (c): relative increase of
  cellular traffic as a function of the fraction of users adopting 3GOL.

The transfer model is the optimal fluid split: a video of size S moved
over ADSL rate ``a`` plus cellular rate ``c`` finishes in ``S/(a+c)`` when
the cellular side may carry its full share ``S·c/(a+c)``; a budget ``b``
below that share caps the cellular bytes, leaving ``max((S−b)/a, b/c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.diurnal import MOBILE_PROFILE, WIRED_PROFILE, DiurnalProfile
from repro.traces.dslam import DslamTrace
from repro.traces.mno import MnoDataset
from repro.util.units import MB, bytes_to_bits, mbps, transfer_seconds
from repro.util.validate import check_fraction, check_non_negative, check_positive

#: §6 working values: two HSPA+ devices at 20 MB/day each.
DEFAULT_DAILY_BUDGET_BYTES = 40.0 * MB
#: Effective cellular rate those two devices contribute together
#: (HSPA+, ~2.4 Mbps each — consistent with Fig. 11a's CDF reaching 2.6,
#: i.e. (a + c)/a with a = 3 Mbps).
DEFAULT_CELLULAR_BPS = mbps(4.8)
#: "accelerate the first video that could benefit from 3GOL (with a size
#: greater than 750 KB, that would require more than 2 seconds on DSL)".
MIN_BOOST_SIZE_BYTES = 750_000.0
#: "The represented geographical area would typically be covered with 2
#: towers" of 40 Mbps backhaul each.
DEFAULT_BACKHAUL_BPS = 2 * mbps(40.0)

_SECONDS_PER_DAY = 86_400.0


def split_transfer(
    size_bytes: float,
    adsl_bps: float,
    cellular_bps: float,
    budget_bytes: float,
) -> Tuple[float, float]:
    """Optimal budgeted multipath transfer of one video.

    Returns ``(transfer_seconds, cellular_bytes_used)``.
    """
    check_positive("size_bytes", size_bytes)
    check_positive("adsl_bps", adsl_bps)
    check_non_negative("cellular_bps", cellular_bps)
    # The inf sentinel is an exact value, not float arithmetic.
    if budget_bytes != float("inf"):  # repro-lint: disable=RL005
        check_non_negative("budget_bytes", budget_bytes)
    if (
        cellular_bps <= adsl_bps * 1e-9  # negligible assist: skip (and
        or budget_bytes <= 0.0           # avoid subnormal-float artefacts)
    ):
        return transfer_seconds(size_bytes, adsl_bps), 0.0
    fair_share = size_bytes * cellular_bps / (adsl_bps + cellular_bps)
    onloaded = min(fair_share, budget_bytes, size_bytes)
    duration = max(
        transfer_seconds(size_bytes - onloaded, adsl_bps),
        transfer_seconds(onloaded, cellular_bps),
    )
    return duration, onloaded


@dataclass(frozen=True)
class UserSpeedup:
    """Per-user outcome of budgeted boosting (one Fig. 11a point)."""

    user_id: str
    dsl_seconds: float
    onload_seconds: float
    onloaded_bytes: float
    videos: int

    @property
    def speedup(self) -> float:
        """DSL latency over 3GOL latency (>= 1)."""
        return self.dsl_seconds / self.onload_seconds


def per_user_speedups(
    trace: DslamTrace,
    daily_budget_bytes: float = DEFAULT_DAILY_BUDGET_BYTES,
    cellular_bps: float = DEFAULT_CELLULAR_BPS,
    adsl_bps: Optional[float] = None,
) -> List[UserSpeedup]:
    """Fig. 11 (a): boost every video under the daily budget.

    Each user's videos are processed in time order, drawing from the
    shared daily budget until it runs out; latency is compared against
    DSL-alone for the same videos.
    """
    check_non_negative("daily_budget_bytes", daily_budget_bytes)
    if adsl_bps is None:
        adsl_bps = trace.adsl_down_bps
    check_positive("adsl_bps", adsl_bps)
    results: List[UserSpeedup] = []
    for user_id, requests in sorted(trace.requests_by_user().items()):
        dsl_total = 0.0
        onload_total = 0.0
        onloaded_bytes = 0.0
        remaining = daily_budget_bytes
        for request in requests:
            dsl_total += transfer_seconds(request.size_bytes, adsl_bps)
            duration, used = split_transfer(
                request.size_bytes, adsl_bps, cellular_bps, remaining
            )
            onload_total += duration
            onloaded_bytes += used
            remaining = max(0.0, remaining - used)
        results.append(
            UserSpeedup(
                user_id=user_id,
                dsl_seconds=dsl_total,
                onload_seconds=onload_total,
                onloaded_bytes=onloaded_bytes,
                videos=len(requests),
            )
        )
    return results


@dataclass(frozen=True)
class OnloadLoadSeries:
    """Fig. 11 (b): onloaded cellular load through the day."""

    bin_seconds: float
    budgeted_bps: np.ndarray
    unbudgeted_bps: np.ndarray
    backhaul_bps: float

    @property
    def budgeted_peak_bps(self) -> float:
        """Peak 5-minute budgeted load."""
        return float(np.max(self.budgeted_bps))

    @property
    def unbudgeted_peak_bps(self) -> float:
        """Peak 5-minute unbudgeted load."""
        return float(np.max(self.unbudgeted_bps))

    def budgeted_overload_fraction(self) -> float:
        """Fraction of bins where budgeted load exceeds the backhaul."""
        return float(np.mean(self.budgeted_bps > self.backhaul_bps))

    def unbudgeted_overload_fraction(self) -> float:
        """Fraction of bins where unbudgeted load exceeds the backhaul."""
        return float(np.mean(self.unbudgeted_bps > self.backhaul_bps))


def onloaded_load_series(
    trace: DslamTrace,
    daily_budget_bytes: float = DEFAULT_DAILY_BUDGET_BYTES,
    cellular_bps: float = DEFAULT_CELLULAR_BPS,
    backhaul_bps: float = DEFAULT_BACKHAUL_BPS,
    bin_seconds: float = 300.0,
    min_boost_size: float = MIN_BOOST_SIZE_BYTES,
    budgeted_first_video_only: bool = True,
) -> OnloadLoadSeries:
    """Fig. 11 (b): traffic onloaded per 5-minute bin, both regimes.

    Only videos larger than ``min_boost_size`` are boosted (smaller ones
    would take under 2 s on DSL anyway). Following the paper's §6 setup,
    the budgeted regime accelerates "the first video that could benefit
    from 3GOL" per user-day, capped at ``daily_budget_bytes`` (this is
    what yields the paper's ~29.8 MB mean onload per user); the unbudgeted
    regime onloads the full cellular share of *every* eligible video.
    """
    check_positive("bin_seconds", bin_seconds)
    n_bins = int(round(_SECONDS_PER_DAY / bin_seconds))
    budgeted = np.zeros(n_bins)
    unbudgeted = np.zeros(n_bins)
    adsl_bps = trace.adsl_down_bps
    for requests in trace.requests_by_user().values():
        remaining = daily_budget_bytes
        boosted_one = False
        for request in requests:
            if request.size_bytes <= min_boost_size:
                continue
            bin_index = int(request.time_s // bin_seconds) % n_bins
            _, unlimited_use = split_transfer(
                request.size_bytes, adsl_bps, cellular_bps, float("inf")
            )
            unbudgeted[bin_index] += unlimited_use
            if remaining > 0.0 and not (
                budgeted_first_video_only and boosted_one
            ):
                _, used = split_transfer(
                    request.size_bytes, adsl_bps, cellular_bps, remaining
                )
                budgeted[bin_index] += used
                remaining = max(0.0, remaining - used)
                boosted_one = True
    return OnloadLoadSeries(
        bin_seconds=bin_seconds,
        # bytes_to_bits is array-safe; transfer_rate validates scalars.
        budgeted_bps=bytes_to_bits(budgeted) / bin_seconds,
        unbudgeted_bps=bytes_to_bits(unbudgeted) / bin_seconds,
        backhaul_bps=backhaul_bps,
    )


@dataclass(frozen=True)
class AdoptionImpact:
    """One point of Fig. 11 (c)."""

    adoption_fraction: float
    total_increase: float
    peak_increase: float


def adoption_traffic_increase(
    dataset: MnoDataset,
    adoption_fractions: Sequence[float],
    daily_3gol_bytes: float = 20.0 * MB,
    existing_profile: DiurnalProfile = MOBILE_PROFILE,
    onload_profile: DiurnalProfile = WIRED_PROFILE,
) -> List[AdoptionImpact]:
    """Fig. 11 (c): relative 3G traffic increase vs adoption.

    Existing traffic is the MNO population's real monthly demand, spread
    over the day by the cellular diurnal profile; 3GOL demand (20 MB/day
    per adopter, uniformly spread over the customer base) follows the
    *wired* diurnal profile, since it is generated by home applications.
    The peak-hour increase is evaluated at the existing profile's peak —
    the misalignment of Fig. 1 makes it smaller than the total increase.
    """
    check_non_negative("daily_3gol_bytes", daily_3gol_bytes)
    n_users = len(dataset.users)
    total_daily_existing = (
        sum(u.monthly_usage_bytes[-1] for u in dataset.users) / 30.0
    )
    if total_daily_existing <= 0.0:
        raise ValueError("dataset has no existing traffic")
    existing_weights = np.array(existing_profile.hourly)
    existing_weights = existing_weights / existing_weights.sum()
    onload_weights = np.array(onload_profile.hourly)
    onload_weights = onload_weights / onload_weights.sum()
    existing_hourly = total_daily_existing * existing_weights
    existing_peak = float(np.max(existing_hourly))
    impacts = []
    for fraction in adoption_fractions:
        check_fraction("adoption_fraction", fraction)
        onload_total = fraction * n_users * daily_3gol_bytes
        onload_hourly = onload_total * onload_weights
        total_increase = onload_total / total_daily_existing
        # Peak-hour increase: how much the *busy-hour* volume grows once
        # 3GOL traffic is superposed. The misaligned peaks of Fig. 1 make
        # this smaller than the aggregate increase.
        combined_peak = float(np.max(existing_hourly + onload_hourly))
        peak_increase = combined_peak / existing_peak - 1.0
        impacts.append(
            AdoptionImpact(
                adoption_fraction=float(fraction),
                total_increase=float(total_increase),
                peak_increase=float(peak_increase),
            )
        )
    return impacts
