"""Cap economics (§6).

The paper frames the multi-provider problem economically: "one needs to
be careful using 3G data in order to avoid penalties associated with
exceeding the enforced cellular data plans [23]" and cites the 'price of
uncertainty' [4]. This module prices the allowance estimator's choices:
given an overage tariff, every guard setting α maps to an expected
monthly overage cost *and* an amount of boost volume released — i.e. an
effective price per onloaded gigabyte, which is the number an operator or
user would actually decide on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.allowance import AllowanceEstimator
from repro.traces.mno import MnoDataset
from repro.util.units import GB
from repro.util.validate import check_non_negative

#: Typical 2013-era European overage pricing: roughly 10 EUR per GB
#: beyond the cap (often billed in 100 MB blocks; we price linearly).
DEFAULT_OVERAGE_EUR_PER_GB = 10.0


@dataclass(frozen=True)
class GuardEconomics:
    """The money view of one guard setting."""

    alpha: float
    #: Boost volume the estimator released, GB per user-month (mean).
    released_gb_per_month: float
    #: Expected overage, GB per user-month (mean).
    overage_gb_per_month: float
    #: Expected overage cost, EUR per user-month (mean).
    overage_cost_eur_per_month: float

    @property
    def effective_eur_per_boost_gb(self) -> float:
        """Overage cost per gigabyte of released boost volume."""
        if self.released_gb_per_month <= 0.0:
            return float("inf")
        return self.overage_cost_eur_per_month / self.released_gb_per_month


def price_guard_settings(
    dataset: MnoDataset,
    alphas: Sequence[float],
    tau: int = 5,
    overage_eur_per_gb: float = DEFAULT_OVERAGE_EUR_PER_GB,
) -> List[GuardEconomics]:
    """Backtest each guard setting and price its overruns.

    For every user-month with at least ``tau`` months of history, the
    month's allowance is granted in full; the *overage* is the volume by
    which (actual usage + allowance) would exceed the cap — the worst
    case where 3GOL spends everything it was granted.
    """
    check_non_negative("overage_eur_per_gb", overage_eur_per_gb)
    results = []
    caps = dataset.cap_by_user()
    for alpha in alphas:
        estimator = AllowanceEstimator(tau=tau, alpha=float(alpha))
        released = 0.0
        overage = 0.0
        user_months = 0
        for user in dataset.users:
            cap = caps[user.user_id]
            series = list(user.monthly_usage_bytes)
            for t in range(tau, len(series)):
                decision = estimator.estimate(cap, series[t - tau : t])
                granted = decision.monthly_allowance_bytes
                released += granted
                overage += max(0.0, series[t] + granted - cap)
                user_months += 1
        if user_months == 0:
            raise ValueError(
                f"no user-month has more than tau={tau} months of history"
            )
        released_gb = released / user_months / GB
        overage_gb = overage / user_months / GB
        results.append(
            GuardEconomics(
                alpha=float(alpha),
                released_gb_per_month=released_gb,
                overage_gb_per_month=overage_gb,
                overage_cost_eur_per_month=overage_gb * overage_eur_per_gb,
            )
        )
    return results


def cheapest_guard(
    economics: Sequence[GuardEconomics],
) -> GuardEconomics:
    """The guard with the lowest effective price per boost gigabyte."""
    if not economics:
        raise ValueError("need at least one guard setting")
    return min(economics, key=lambda e: e.effective_eur_per_boost_gb)
