"""Distribution statistics for the figures.

The paper presents results as empirical CDFs (Figs. 10, 11a) and violin
plots (Fig. 5). :class:`Ecdf` is an exact empirical CDF with the queries
the reproduction asserts on; :func:`summarize_violin` reduces a sample to
the quantities a violin plot communicates (quartiles plus a density
histogram).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class Ecdf:
    """Empirical cumulative distribution function of a sample."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not len(samples):
            raise ValueError("need at least one sample")
        self._sorted = sorted(float(s) for s in samples)

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self._sorted)

    def fraction_below(self, x: float) -> float:
        """P(X < x) — strictly below, matching "use less than 10%" claims."""
        return bisect.bisect_left(self._sorted, float(x)) / self.n

    def fraction_at_least(self, x: float) -> float:
        """P(X >= x) — matching "50% of users see at least 20% speedup"."""
        return 1.0 - self.fraction_below(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF (linear interpolation between order statistics)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def to_dict(self) -> dict:
        """Compact JSON summary: size plus the decile curve."""
        grid = [i / 10.0 for i in range(11)]
        return {
            "n": self.n,
            "quantiles": {f"{q:.1f}": self.quantile(q) for q in grid},
        }

    def points(self) -> Tuple[List[float], List[float]]:
        """(x, F(x)) step points for plotting/printing the curve."""
        xs = self._sorted
        ys = [(i + 1) / self.n for i in range(self.n)]
        return list(xs), ys


@dataclass(frozen=True)
class ViolinSummary:
    """What a violin plot shows: quartiles plus a density histogram."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    stdev: float
    #: (bin_center, density) pairs of the kernel of the violin.
    density: Tuple[Tuple[float, float], ...]
    n: int


def summarize_violin(samples: Sequence[float], bins: int = 12) -> ViolinSummary:
    """Summarise a sample the way a violin plot would."""
    if not len(samples):
        raise ValueError("need at least one sample")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    data = np.asarray(list(samples), dtype=float)
    hist, edges = np.histogram(data, bins=bins, density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return ViolinSummary(
        minimum=float(data.min()),
        q1=float(np.quantile(data, 0.25)),
        median=float(np.quantile(data, 0.5)),
        q3=float(np.quantile(data, 0.75)),
        maximum=float(data.max()),
        mean=float(data.mean()),
        stdev=float(data.std(ddof=1)) if len(data) > 1 else 0.0,
        density=tuple(zip(centers.tolist(), hist.tolist())),
        n=len(data),
    )


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``.

    Both are durations: ``speedup(41, 11) == 3.7…``. Raises on
    non-positive inputs — a zero-duration transfer indicates a harness bug.
    """
    if baseline <= 0.0 or improved <= 0.0:
        raise ValueError(
            f"durations must be positive (baseline={baseline}, "
            f"improved={improved})"
        )
    return baseline / improved


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0.0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline
