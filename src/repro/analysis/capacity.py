"""The §2.1 back-of-envelope capacity comparison.

"If we assume that one cellular tower provides coverage to an area of 200
meters radius, and a typical population density of 35 000 inhabitants per
km², then each cell offers services to 4 375 subscribers. If we assume
that each household has 4 people and that we have 80% penetration of ADSL
connectivity, then each cell covers 875 ADSL connections. […] with an
average downlink speed of 6.7 Mbps, the overall ADSL downlink capacity for
the cell area would be 5.863 Gbps. The same area is covered by a cell
tower with a typical 40-50 Mbps backhaul […]. Therefore the cellular
network is 1-2 orders of magnitude smaller in terms of capacity than its
wired counterpart."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import mbps
from repro.util.validate import check_fraction, check_positive


@dataclass(frozen=True)
class CellAreaAssumptions:
    """The §2.1 assumptions, overridable for sensitivity analysis."""

    cell_radius_m: float = 200.0
    population_per_km2: float = 35_000.0
    people_per_household: float = 4.0
    adsl_penetration: float = 0.80
    adsl_down_bps: float = mbps(6.7)
    adsl_up_down_asymmetry: float = 0.10
    cell_backhaul_bps: float = mbps(45.0)

    def __post_init__(self) -> None:
        check_positive("cell_radius_m", self.cell_radius_m)
        check_positive("population_per_km2", self.population_per_km2)
        check_positive("people_per_household", self.people_per_household)
        check_fraction("adsl_penetration", self.adsl_penetration)
        check_positive("adsl_down_bps", self.adsl_down_bps)
        check_positive("adsl_up_down_asymmetry", self.adsl_up_down_asymmetry)
        check_positive("cell_backhaul_bps", self.cell_backhaul_bps)


@dataclass(frozen=True)
class CapacityComparison:
    """Result of the back-of-envelope calculation."""

    subscribers_in_cell: float
    adsl_connections: float
    adsl_aggregate_down_bps: float
    adsl_aggregate_up_bps: float
    cell_backhaul_bps: float

    @property
    def down_ratio(self) -> float:
        """ADSL aggregate downlink over cellular backhaul."""
        return self.adsl_aggregate_down_bps / self.cell_backhaul_bps

    @property
    def up_ratio(self) -> float:
        """ADSL aggregate uplink over cellular backhaul."""
        return self.adsl_aggregate_up_bps / self.cell_backhaul_bps

    @property
    def down_orders_of_magnitude(self) -> float:
        """log10 of the downlink ratio (the paper claims 1-2)."""
        return math.log10(self.down_ratio)


def compare_capacity(
    assumptions: CellAreaAssumptions = CellAreaAssumptions(),
) -> CapacityComparison:
    """Run the §2.1 calculation under ``assumptions``."""
    area_km2 = math.pi * (assumptions.cell_radius_m / 1000.0) ** 2
    subscribers = area_km2 * assumptions.population_per_km2
    households = subscribers / assumptions.people_per_household
    adsl_connections = households * assumptions.adsl_penetration
    aggregate_down = adsl_connections * assumptions.adsl_down_bps
    aggregate_up = aggregate_down * assumptions.adsl_up_down_asymmetry
    return CapacityComparison(
        subscribers_in_cell=subscribers,
        adsl_connections=adsl_connections,
        adsl_aggregate_down_bps=aggregate_down,
        adsl_aggregate_up_bps=aggregate_up,
        cell_backhaul_bps=assumptions.cell_backhaul_bps,
    )
