"""Analysis helpers: distribution statistics, the §2.1 capacity
back-of-envelope, and the §6 trace-driven load analyses.
"""

from repro.analysis.stats import (
    Ecdf,
    ViolinSummary,
    speedup,
    summarize_violin,
)
from repro.analysis.capacity import (
    CapacityComparison,
    CellAreaAssumptions,
    compare_capacity,
)
from repro.analysis.economics import (
    GuardEconomics,
    cheapest_guard,
    price_guard_settings,
)
from repro.analysis.load import (
    AdoptionImpact,
    OnloadLoadSeries,
    UserSpeedup,
    adoption_traffic_increase,
    onloaded_load_series,
    per_user_speedups,
)

__all__ = [
    "Ecdf",
    "ViolinSummary",
    "speedup",
    "summarize_violin",
    "CapacityComparison",
    "CellAreaAssumptions",
    "compare_capacity",
    "GuardEconomics",
    "cheapest_guard",
    "price_guard_settings",
    "AdoptionImpact",
    "OnloadLoadSeries",
    "UserSpeedup",
    "adoption_traffic_increase",
    "onloaded_load_series",
    "per_user_speedups",
]
