"""``repro-serve``: run the onload service and its chaos/load smoke.

::

    repro-serve smoke                    # seeded chaos+load run, checks
    repro-serve smoke --seed 7 --duration 30 --update-bench
    repro-serve plan --seed 7            # print the deterministic plans

``smoke`` stands up the full loopback topology — origin, a shaped
3G MobileProxy leg with cap/permit authority, the service in front —
then fires the seeded chaos fleet and the open-loop load generator at
it concurrently, revokes the phone's permit mid-run, drains, and
checks the service's robustness invariants:

* every admitted flow reached a terminal outcome (zero stranded);
* the drain finished inside its deadline;
* the trace is schema-clean (every event name in the catalogue).

Exit codes follow the repo convention: 0 all invariants hold, 1 an
invariant failed, 2 usage error. ``--update-bench`` rewrites
``BENCH_service.json`` (the committed record's ``plan`` section is a
pure function of the seed; ``measured`` is wall-clock).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.service import (
    SERVICE_BENCH_FILENAME,
    build_service_record,
    plan_section,
    write_service_record,
)
from repro.core.captracker import CapTracker
from repro.core.permits import PermitServer
from repro.core.resilience import FlowLedger, RetryBudget
from repro.obs.capture import capture
from repro.obs.export import export_lines, parse_lines
from repro.obs.schema import EVENTS
from repro.proto import LoopbackOrigin, MobileProxy
from repro.proto.shaping import TokenBucket
from repro.service.chaos import build_plan, run_plan
from repro.service.loadgen import build_load_plan, run_load
from repro.service.server import OnloadService, ServiceLeg
from repro.util.units import bits_to_bytes, mbps


def _default_dir() -> Path:
    """Repo root when run from a checkout, else the working directory."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running onload service: smoke and plans.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    smoke = commands.add_parser(
        "smoke",
        help="seeded chaos+load run against a live loopback service",
    )
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="seconds of offered load/chaos (default: 30)",
    )
    smoke.add_argument(
        "--rate",
        type=float,
        default=8.0,
        help="load flows per second (default: 8)",
    )
    smoke.add_argument(
        "--chaos",
        type=int,
        default=120,
        help="adversarial connections over the run (default: 120)",
    )
    smoke.add_argument(
        "--max-active",
        type=int,
        default=64,
        help="service flow-pool bound (default: 64)",
    )
    smoke.add_argument(
        "--update-bench",
        action="store_true",
        help=f"rewrite {SERVICE_BENCH_FILENAME} from this run",
    )
    smoke.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="directory for the bench record (default: repo root)",
    )
    smoke.add_argument(
        "--json",
        action="store_true",
        help="print the full record as JSON instead of a summary",
    )
    plan = commands.add_parser(
        "plan", help="print the seed-derived chaos and load plans"
    )
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--duration", type=float, default=30.0)
    plan.add_argument("--rate", type=float, default=8.0)
    plan.add_argument("--chaos", type=int, default=120)
    return parser


def _check_trace(lines: List[str]) -> List[str]:
    """Schema-clean check over exported trace lines."""
    problems: List[str] = []
    try:
        parsed = parse_lines(lines)
    except ValueError as exc:
        return [f"trace does not parse: {exc}"]
    for event in parsed["events"]:
        name = event.get("name", "")
        if name not in EVENTS:
            problems.append(f"unknown event name {name!r} in trace")
    return problems


def _run_smoke(args: argparse.Namespace) -> int:
    seed = args.seed
    load_plan = build_load_plan(
        seed, duration_s=args.duration, rate_per_s=args.rate
    )
    chaos_plan = build_plan(
        seed, duration_s=args.duration, connections=args.chaos
    )
    failures: List[str] = []
    with capture() as handle:
        origin = LoopbackOrigin()
        with origin:
            proxy = MobileProxy(
                origin.address,
                down_bucket=TokenBucket(bits_to_bytes(mbps(4.0))),
                up_bucket=TokenBucket(bits_to_bytes(mbps(2.0))),
                name="ph1",
                recv_timeout=3.0,
            ).start()
            tracker = CapTracker(daily_budget_bytes=256 * 1024 * 1024)
            permits = PermitServer(
                utilization_fn=lambda cell, now: 0.3, obs=handle
            )
            ledger = FlowLedger(
                {"ph1": tracker}, permit_server=permits, obs=handle
            )
            service = OnloadService(
                legs=[
                    ServiceLeg("adsl", origin.address),
                    ServiceLeg(
                        "ph1", proxy.address, device="ph1", cell="c0"
                    ),
                ],
                max_active=args.max_active,
                max_queued=args.max_active // 2,
                queue_timeout_s=0.5,
                recv_timeout=3.0,
                idle_timeout=4.0,
                flow_deadline_s=15.0,
                drain_deadline_s=8.0,
                retry_budget=RetryBudget(seed=seed, obs=handle),
                ledger=ledger,
                obs=handle,
            )
            try:
                service.start()
                # Pull the phone's permit mid-run: in-flight cellular
                # flows must abort with a structured permit-revoked
                # degradation and true up their bytes.
                revoker = threading.Timer(
                    args.duration / 2.0, permits.revoke, args=("ph1",)
                )
                revoker.daemon = True
                revoker.start()
                chaos_box: Dict[str, Any] = {}
                chaos_thread = threading.Thread(
                    target=lambda: chaos_box.update(
                        report=run_plan(chaos_plan, service.address)
                    ),
                    daemon=True,
                )
                chaos_thread.start()
                load_report = run_load(load_plan, service.address)
                chaos_thread.join(timeout=args.duration + 60.0)
                revoker.cancel()
            finally:
                drain = service.stop()
                proxy.stop()
        report = service.report()
        lines = export_lines(handle, experiment_id="service-smoke")
    if report.stranded() != 0:
        failures.append(
            f"{report.stranded()} stranded flow(s) after drain"
        )
    if not drain.met_deadline:
        failures.append(
            f"drain took {drain.elapsed_s:.2f}s "
            f"(deadline {service.drain_deadline_s}s "
            f"+ grace {service.abort_grace_s}s)"
        )
    if load_report.outcomes.get("completed", 0) == 0:
        failures.append("no load flow completed — service never served")
    failures.extend(_check_trace(lines))
    record = build_service_record(
        seed, load_plan, chaos_plan, load_report, report, drain
    )
    root = args.dir if args.dir is not None else _default_dir()
    if args.update_bench:
        path = write_service_record(record, root)
        print(f"wrote {path}")
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        measured = record["measured"]
        print(
            f"service smoke seed={seed}: "
            f"offered={load_report.offered} "
            f"outcomes={measured['client']['outcomes']} "
            f"admitted={report.admitted} "
            f"p50={measured['latency_s']['p50']} "
            f"p99={measured['latency_s']['p99']} "
            f"drain={measured['drain']}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _run_plan(args: argparse.Namespace) -> int:
    load_plan = build_load_plan(
        args.seed, duration_s=args.duration, rate_per_s=args.rate
    )
    chaos_plan = build_plan(
        args.seed, duration_s=args.duration, connections=args.chaos
    )
    print(
        json.dumps(
            plan_section(args.seed, load_plan, chaos_plan),
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "smoke":
        return _run_smoke(args)
    return _run_plan(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
