"""Seeded open-loop load generator for the onload service.

Arrivals follow the open-loop discipline the DSLAM trace analysis
motivates: flows fire at their planned offsets whether or not earlier
flows have completed, so an overloaded service faces *more* pressure,
not a politely self-throttling client. Inter-arrival gaps are
exponential (Poisson arrivals at ``rate_per_s``), body sizes are
lognormal around ``mean_kbytes`` (photo-upload-shaped: most small, a
heavy tail), and each flow carries a propagated deadline header so the
deadline machinery is exercised end to end.

The *plan* — offsets, sizes, deadlines — is a pure function of the
seed (:func:`build_load_plan`), hashed into a digest that the service
benchmark records; the *measurements* (latencies, outcome counts) are
wall-clock and live in a separate, explicitly non-deterministic
section.
"""

from __future__ import annotations

import contextlib
import hashlib
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.proto import httpwire
from repro.util.rng import RngFactory

__all__ = [
    "LoadFlow",
    "LoadPlan",
    "LoadReport",
    "build_load_plan",
    "run_load",
]

#: Outcome labels, from the client's chair.
COMPLETED = "completed"
SHED = "shed"
FAILED = "failed"


@dataclass(frozen=True)
class LoadFlow:
    """One planned flow: when it fires, what it uploads, its budget."""

    offset_s: float
    body_bytes: int
    deadline_s: float


@dataclass(frozen=True)
class LoadPlan:
    """A replayable open-loop workload (pure function of the seed)."""

    seed: int
    duration_s: float
    rate_per_s: float
    mean_kbytes: float
    flows: Tuple[LoadFlow, ...]

    def digest(self) -> str:
        """SHA-256 over the full schedule; byte-identical per seed."""
        hasher = hashlib.sha256()
        hasher.update(
            f"{self.seed}:{self.duration_s}:{self.rate_per_s}:"
            f"{self.mean_kbytes}".encode("ascii")
        )
        for flow in self.flows:
            hasher.update(
                f"{flow.offset_s:.9f}:{flow.body_bytes}:"
                f"{flow.deadline_s:.9f};".encode("ascii")
            )
        return hasher.hexdigest()


@dataclass
class LoadReport:
    """What the generator measured (wall-clock; not deterministic)."""

    offered: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    elapsed_s: float = 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Latency percentile over completed flows (None: no data)."""
        if not self.latencies_s:
            return None
        return float(np.percentile(np.asarray(self.latencies_s), q))


def build_load_plan(
    seed: int,
    duration_s: float,
    rate_per_s: float,
    mean_kbytes: float = 16.0,
    min_deadline_s: float = 5.0,
    max_deadline_s: float = 20.0,
) -> LoadPlan:
    """Derive an open-loop arrival schedule; same seed, same plan."""
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if rate_per_s <= 0.0:
        raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
    factory = RngFactory(seed)
    arrivals_rng = factory.derive("loadgen-arrivals")
    sizes_rng = factory.derive("loadgen-sizes")
    deadlines_rng = factory.derive("loadgen-deadlines")
    flows: List[LoadFlow] = []
    clock = 0.0
    while True:
        clock += float(arrivals_rng.exponential(1.0 / rate_per_s))
        if clock >= duration_s:
            break
        # Lognormal with the requested mean: most uploads small, a
        # heavy tail, floored at 1 byte.
        sigma = 0.75
        mu = float(np.log(mean_kbytes * 1024.0)) - sigma * sigma / 2.0
        size = max(1, int(sizes_rng.lognormal(mu, sigma)))
        deadline = float(
            deadlines_rng.uniform(min_deadline_s, max_deadline_s)
        )
        flows.append(
            LoadFlow(
                offset_s=clock, body_bytes=size, deadline_s=deadline
            )
        )
    return LoadPlan(
        seed=seed,
        duration_s=duration_s,
        rate_per_s=rate_per_s,
        mean_kbytes=mean_kbytes,
        flows=tuple(flows),
    )


def _drive_flow(
    index: int,
    flow: LoadFlow,
    address: Tuple[str, int],
    report: LoadReport,
    lock: threading.Lock,
) -> None:
    started = time.monotonic()
    status = 0
    try:
        sock = socket.create_connection(
            address, timeout=flow.deadline_s
        )
    except OSError:
        with lock:
            report.outcomes[FAILED] = (
                report.outcomes.get(FAILED, 0) + 1
            )
        return
    try:
        sock.sendall(
            httpwire.render_request(
                "POST",
                f"/load/flow-{index}",
                "origin",
                headers={
                    httpwire.DEADLINE_HEADER: f"{flow.deadline_s:.3f}"
                },
                body=b"u" * flow.body_bytes,
            )
        )
        status, _, _ = httpwire.read_response(
            sock, timeout=flow.deadline_s
        )
    except (httpwire.WireError, OSError):
        with lock:
            report.outcomes[FAILED] = (
                report.outcomes.get(FAILED, 0) + 1
            )
        return
    finally:
        with contextlib.suppress(OSError):
            sock.close()
    latency = time.monotonic() - started
    outcome = COMPLETED if status == 200 else SHED
    with lock:
        report.statuses[status] = report.statuses.get(status, 0) + 1
        report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
        if outcome == COMPLETED:
            report.latencies_s.append(latency)


def run_load(
    plan: LoadPlan, address: Tuple[str, int]
) -> LoadReport:
    """Fire the plan open-loop at a live service; blocks until done.

    Flows launch at their planned offsets regardless of completions.
    Every socket carries a timeout (the flow's own deadline), so a
    wedged service costs a bounded wait, never a hung generator.
    """
    report = LoadReport(offered=len(plan.flows))
    lock = threading.Lock()
    started = time.monotonic()
    threads: List[threading.Thread] = []
    for index, flow in enumerate(plan.flows):
        delay = started + flow.offset_s - time.monotonic()
        if delay > 0.0:
            time.sleep(delay)
        thread = threading.Thread(
            target=_drive_flow,
            args=(index, flow, address, report, lock),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    longest = max(
        (flow.deadline_s for flow in plan.flows), default=0.0
    )
    deadline = started + plan.duration_s + longest + 10.0
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    report.elapsed_s = time.monotonic() - started
    return report
