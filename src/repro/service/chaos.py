"""Socket-level chaos harness for the onload service.

A seeded adversarial client fleet that attacks a live service over real
loopback sockets with the failure modes a long-running relay actually
meets:

``reset``
    connect, send half a request, then close with ``SO_LINGER(1, 0)``
    so the kernel sends RST instead of FIN — the mid-request
    connection-reset case;
``truncate``
    declare ``Content-Length: N`` and send fewer than N body bytes
    before closing — a framing lie the strict wire parsers must turn
    into a bounded ``bad-peer`` degradation, not a hang;
``slow-loris``
    trickle the request header a few bytes at a time with sleeps, to
    try to pin a pool slot; the service's flow deadline must cut it
    off;
``accept-pressure``
    connect and send nothing at all, holding the socket open — fills
    the accept queue and the admission pool with idle flows;
``clean``
    a well-formed request that reads its response — the control that
    proves the service keeps serving honest peers *during* the attack.

The plan — how many connections, which mode, when — is derived from a
seed (:func:`build_plan` is a pure function of its arguments), so a
chaos run is replayable. Execution timing is real wall-clock and is
not, but every invariant the harness checks (every admitted flow
reaches a terminal outcome, the service stays responsive, drain
completes) is timing-independent.
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.proto import httpwire
from repro.util.rng import spawn_rng

__all__ = [
    "CHAOS_MODES",
    "ChaosConnection",
    "ChaosPlan",
    "ChaosReport",
    "build_plan",
    "run_plan",
]

CLEAN = "clean"
RESET = "reset"
TRUNCATE = "truncate"
SLOW_LORIS = "slow-loris"
ACCEPT_PRESSURE = "accept-pressure"

#: Every chaos mode, in plan-encoding order (index = mode id).
CHAOS_MODES: Tuple[str, ...] = (
    CLEAN,
    RESET,
    TRUNCATE,
    SLOW_LORIS,
    ACCEPT_PRESSURE,
)

#: Default mode mix: enough clean traffic to prove liveness under
#: attack, the rest split across the four adversarial modes.
DEFAULT_WEIGHTS: Tuple[float, ...] = (0.4, 0.15, 0.15, 0.15, 0.15)


@dataclass(frozen=True)
class ChaosConnection:
    """One planned adversarial connection."""

    offset_s: float
    mode: str
    #: Mode-specific size knob (body bytes, trickle bytes, hold time).
    intensity: int


@dataclass(frozen=True)
class ChaosPlan:
    """A replayable chaos schedule (pure function of the seed)."""

    seed: int
    duration_s: float
    connections: Tuple[ChaosConnection, ...]

    def mode_counts(self) -> Dict[str, int]:
        """Planned connections per mode."""
        counts: Dict[str, int] = {}
        for conn in self.connections:
            counts[conn.mode] = counts.get(conn.mode, 0) + 1
        return counts


@dataclass
class ChaosReport:
    """What the fleet observed (wall-clock side; not deterministic)."""

    attempted: Dict[str, int] = field(default_factory=dict)
    #: Responses read by clean connections, keyed by status code.
    responses: Dict[int, int] = field(default_factory=dict)
    connect_failures: int = 0
    elapsed_s: float = 0.0


def build_plan(
    seed: int,
    duration_s: float,
    connections: int,
    weights: Tuple[float, ...] = DEFAULT_WEIGHTS,
) -> ChaosPlan:
    """Derive a chaos schedule from a seed; same seed, same plan."""
    if connections < 0:
        raise ValueError(f"connections must be >= 0, got {connections}")
    if len(weights) != len(CHAOS_MODES):
        raise ValueError(
            f"need {len(CHAOS_MODES)} weights, got {len(weights)}"
        )
    rng = spawn_rng(seed)
    total = float(sum(weights))
    probabilities = [w / total for w in weights]
    planned: List[ChaosConnection] = []
    for _ in range(connections):
        offset = float(rng.uniform(0.0, duration_s))
        mode = CHAOS_MODES[
            int(rng.choice(len(CHAOS_MODES), p=probabilities))
        ]
        intensity = int(rng.integers(1, 64))
        planned.append(
            ChaosConnection(
                offset_s=offset, mode=mode, intensity=intensity
            )
        )
    planned.sort(key=lambda c: (c.offset_s, c.mode, c.intensity))
    return ChaosPlan(
        seed=seed,
        duration_s=duration_s,
        connections=tuple(planned),
    )


def run_plan(
    plan: ChaosPlan,
    address: Tuple[str, int],
    connect_timeout: float = 5.0,
    hold_s: float = 2.0,
    trickle_gap_s: float = 0.2,
) -> ChaosReport:
    """Fire a chaos plan at a live service; blocks until done.

    Every socket the fleet opens carries an explicit timeout, so a
    misbehaving *service* cannot hang the harness either. ``hold_s``
    bounds how long accept-pressure and slow-loris connections linger.
    """
    report = ChaosReport()
    report_lock = threading.Lock()
    started = time.monotonic()
    threads: List[threading.Thread] = []

    def attack(conn: ChaosConnection) -> None:
        delay = started + conn.offset_s - time.monotonic()
        if delay > 0.0:
            time.sleep(delay)
        with report_lock:
            report.attempted[conn.mode] = (
                report.attempted.get(conn.mode, 0) + 1
            )
        try:
            sock = socket.create_connection(
                address, timeout=connect_timeout
            )
        except OSError:
            with report_lock:
                report.connect_failures += 1
            return
        try:
            _run_mode(
                sock, conn, report, report_lock, hold_s, trickle_gap_s
            )
        finally:
            with contextlib.suppress(OSError):
                sock.close()

    for planned in plan.connections:
        thread = threading.Thread(
            target=attack, args=(planned,), daemon=True
        )
        thread.start()
        threads.append(thread)
    # Every mode is individually bounded, so the join deadline is a
    # backstop, not a correctness mechanism.
    deadline = (
        started + plan.duration_s + hold_s + connect_timeout + 10.0
    )
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    report.elapsed_s = time.monotonic() - started
    return report


def _run_mode(
    sock: socket.socket,
    conn: ChaosConnection,
    report: ChaosReport,
    report_lock: threading.Lock,
    hold_s: float,
    trickle_gap_s: float,
) -> None:
    if conn.mode == CLEAN:
        sock.sendall(
            httpwire.render_request(
                "POST",
                f"/chaos/clean-{conn.intensity}",
                "origin",
                body=b"c" * conn.intensity,
            )
        )
        with contextlib.suppress(httpwire.WireError, OSError):
            status, _, _ = httpwire.read_response(
                sock, timeout=hold_s + 10.0
            )
            with report_lock:
                report.responses[status] = (
                    report.responses.get(status, 0) + 1
                )
    elif conn.mode == RESET:
        with contextlib.suppress(OSError):
            sock.sendall(b"POST /chaos/reset HTTP/1.1\r\nHost: or")
            # linger(on, 0): close() sends RST, not FIN.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
    elif conn.mode == TRUNCATE:
        declared = conn.intensity + 16
        with contextlib.suppress(OSError):
            sock.sendall(
                b"POST /chaos/truncate HTTP/1.1\r\n"
                b"Host: origin\r\n"
                + f"Content-Length: {declared}\r\n\r\n".encode("ascii")
                + b"t" * conn.intensity  # short of the declaration
            )
    elif conn.mode == SLOW_LORIS:
        head = (
            b"POST /chaos/loris HTTP/1.1\r\nHost: origin\r\n"
            b"X-Drip: " + b"d" * 512 + b"\r\n\r\n"
        )
        stop_at = time.monotonic() + hold_s
        with contextlib.suppress(OSError):
            for i in range(0, len(head), max(1, conn.intensity // 8)):
                if time.monotonic() >= stop_at:
                    break
                sock.sendall(head[i : i + max(1, conn.intensity // 8)])
                time.sleep(trickle_gap_s)
    elif conn.mode == ACCEPT_PRESSURE:
        # Say nothing; just occupy the accept queue / pool.
        time.sleep(hold_s)
    else:  # pragma: no cover - plan construction forbids this
        raise ValueError(f"unknown chaos mode {conn.mode!r}")
