"""The long-running onload service.

:class:`OnloadService` promotes the one-shot proto components to a
service that serves heavy traffic and survives it: a real TCP relay on
127.0.0.1 that pipes client requests to one of several upstream *legs*
(the ADSL gateway or a phone's shaped 3G proxy), with

* **admission control and backpressure** — a bounded flow pool with a
  bounded, deadline-bounded wait queue; overload is shed explicitly
  with a 503 and a structured ``overload-shed`` degradation, never
  queued unboundedly;
* a shared :class:`~repro.core.resilience.RetryBudget` — upstream
  connect/relay retries spend from one token bucket with jittered
  backoff, so an upstream outage cannot fan out into a retry storm;
* **deadline propagation** — the client's deadline header clamps every
  per-read timeout on both sockets and is rewritten with the remaining
  budget when the request is forwarded;
* **cap/permit integration** — cellular legs are metered through a
  :class:`~repro.core.resilience.FlowLedger` into the shared (now
  lock-guarded) :class:`~repro.core.captracker.CapTracker`; a permit
  revocation aborts the leg's in-flight flows mid-transfer, and every
  abort is trued up on settlement;
* a **graceful drain state machine** — ``stop()`` moves the
  :class:`~repro.service.lifecycle.Lifecycle` to ``draining``, stops
  accepting, lets in-flight flows finish under a deadline, aborts the
  stragglers (``drain-aborted``), and only then reaches ``stopped``.

Every admitted flow ends in exactly one of three outcomes —
``completed``, ``shed`` or ``aborted`` — recorded in an in-memory
journal whose events (``service.flow.admit`` / ``service.flow.end`` /
lifecycle markers) are flushed to the tracer from a single thread after
the drain, keeping trace emission single-threaded as the obs layer
requires. The drain-discipline hunt oracle checks that pairing.
"""

from __future__ import annotations

import contextlib
import itertools
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.resilience import DegradationLog, FlowLedger, RetryBudget
from repro.obs.capture import Instrumentation, current as obs_current
from repro.proto import httpwire
from repro.proto.errors import StallError, WireError
from repro.proto.mobileproxy import ACCEPT_TICK_S
from repro.service.admission import AdmissionController
from repro.service.lifecycle import (
    DRAINING,
    Deadline,
    Lifecycle,
    SERVING,
    STARTING,
    STOPPED,
)

__all__ = [
    "DrainReport",
    "FlowRecord",
    "OnloadService",
    "ServiceLeg",
    "ServiceReport",
]

#: Flow outcomes (the ``service.flow.end`` vocabulary).
COMPLETED = "completed"
SHED = "shed"
ABORTED = "aborted"


@dataclass(frozen=True)
class ServiceLeg:
    """One upstream the service may relay through.

    ``device`` names the cellular phone whose cap meters the leg's
    bytes; ``None`` marks the unmetered ADSL leg. ``cell`` is the
    device's cell for permit requests.
    """

    name: str
    address: Tuple[str, int]
    device: Optional[str] = None
    cell: str = ""


@dataclass
class FlowRecord:
    """Terminal accounting for one flow."""

    flow_id: str
    leg: str
    admitted: bool
    outcome: str
    reason: str
    status: int
    transferred_bytes: int
    latency_s: float


@dataclass
class DrainReport:
    """What the drain state machine did."""

    in_flight: int
    drained: int
    aborted: int
    elapsed_s: float
    met_deadline: bool


@dataclass
class ServiceReport:
    """Aggregate view over every flow the service ever saw."""

    flows: List[FlowRecord]
    drain: Optional[DrainReport]
    active: int

    @property
    def admitted(self) -> int:
        """Flows that got a pool slot."""
        return sum(1 for f in self.flows if f.admitted)

    def outcome_counts(self) -> Dict[str, int]:
        """Flow count per terminal outcome (admitted and shed alike)."""
        counts: Dict[str, int] = {}
        for flow in self.flows:
            counts[flow.outcome] = counts.get(flow.outcome, 0) + 1
        return counts

    def shed_reasons(self) -> Dict[str, int]:
        """Shed/abort reasons, for the load report."""
        reasons: Dict[str, int] = {}
        for flow in self.flows:
            if flow.reason:
                reasons[flow.reason] = reasons.get(flow.reason, 0) + 1
        return reasons

    def stranded(self) -> int:
        """Admitted flows without a terminal outcome (must be zero)."""
        bad = sum(
            1
            for f in self.flows
            if f.outcome not in (COMPLETED, SHED, ABORTED)
        )
        return bad + self.active


class _Flow:
    """In-flight state for one admitted flow."""

    def __init__(
        self, flow_id: str, client: socket.socket, leg: ServiceLeg
    ) -> None:
        self.flow_id = flow_id
        self.client = client
        self.leg = leg
        self.cancel = threading.Event()
        self.abort_reason = ""

    def abort(self, reason: str) -> None:
        """Cancel the flow; the worker observes it at its next step.

        Closing the socket is part of the cancel: a worker blocked in
        ``recv`` holds no lock and checks no flag, so the close is what
        actually unblocks it.
        """
        if not self.cancel.is_set():
            self.abort_reason = reason
            self.cancel.set()
        with contextlib.suppress(OSError):
            self.client.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self.client.close()


class OnloadService:
    """A long-running, overload-safe onloading relay service."""

    def __init__(
        self,
        legs: List[ServiceLeg],
        max_active: int = 64,
        max_queued: int = 32,
        queue_timeout_s: float = 0.5,
        recv_timeout: float = 5.0,
        idle_timeout: float = 10.0,
        flow_deadline_s: Optional[float] = 30.0,
        drain_deadline_s: float = 5.0,
        abort_grace_s: float = 5.0,
        ledger: Optional[FlowLedger] = None,
        retry_budget: Optional[RetryBudget] = None,
        degradation_log: Optional[DegradationLog] = None,
        name: str = "onload",
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if not legs:
            raise ValueError("need at least one upstream leg")
        self.legs = list(legs)
        self.name = name
        self.recv_timeout = recv_timeout
        self.idle_timeout = idle_timeout
        #: Hard bound on one flow's total lifetime (``None``: unbounded).
        #: This is what ultimately defeats a slow-loris client: every
        #: read is clamped to the shrinking budget, so a trickler hits
        #: a stall instead of pinning a pool slot forever.
        self.flow_deadline_s = flow_deadline_s
        self.drain_deadline_s = drain_deadline_s
        self.abort_grace_s = abort_grace_s
        self.admission = AdmissionController(
            max_active=max_active,
            max_queued=max_queued,
            queue_timeout_s=queue_timeout_s,
        )
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        self.ledger = ledger
        self.degradations = (
            degradation_log
            if degradation_log is not None
            else DegradationLog()
        )
        self._obs = obs if obs is not None else obs_current()
        self._started_at = time.monotonic()
        self.lifecycle = Lifecycle()
        self._flow_ids = itertools.count()
        self._active: Dict[str, _Flow] = {}
        self._active_lock = threading.Lock()
        self._records: List[FlowRecord] = []
        self._records_lock = threading.Lock()
        #: (event name, service-relative time, fields) triples; flushed
        #: to the tracer single-threaded after the drain.
        self._journal: List[Tuple[str, float, Dict[str, object]]] = []
        self._journal_lock = threading.Lock()
        self._leg_index = 0
        self._leg_lock = threading.Lock()
        self._unsubscribe_revocations: Optional[Callable[[], None]] = None
        self._drain_report: Optional[DrainReport] = None
        self._running = False
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(128)
        self._server.settimeout(ACCEPT_TICK_S)
        self.host, self.port = self._server.getsockname()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the service listens on."""
        return (self.host, self.port)

    def _now(self) -> float:
        """Seconds since construction (journal/degradation stamps)."""
        return time.monotonic() - self._started_at

    def start(self) -> "OnloadService":
        """Move to ``serving`` and begin accepting flows."""
        previous = self.lifecycle.transition(SERVING)
        self._journal_event(
            "service.state", state=SERVING, previous=previous
        )
        if self.ledger is not None:
            self._unsubscribe_revocations = (
                self.ledger.subscribe_revocations(
                    self._on_permit_revoked
                )
            )
        self._running = True
        threading.Thread(
            target=self._accept_loop,
            name=f"{self.name}-accept",
            daemon=True,
        ).start()
        return self

    def stop(self) -> DrainReport:
        """Graceful drain: stop accepting, drain, abort stragglers.

        Always terminates within roughly ``drain_deadline_s +
        abort_grace_s`` and leaves the lifecycle in ``stopped``.
        """
        if self.lifecycle.state == STARTING:
            previous = self.lifecycle.transition(STOPPED)
            self._close_server()
            self._journal_event(
                "service.state", state=STOPPED, previous=previous
            )
            self._drain_report = DrainReport(0, 0, 0, 0.0, True)
            return self._drain_report
        began = self._now()
        previous = self.lifecycle.transition(DRAINING)
        self._journal_event(
            "service.state", state=DRAINING, previous=previous
        )
        in_flight = self.admission.active
        self._journal_event(
            "service.drain.begin",
            deadline_s=self.drain_deadline_s,
            in_flight=in_flight,
        )
        self.admission.begin_drain()
        self._running = False
        self._close_server()
        drained_in_time = self.admission.wait_idle(self.drain_deadline_s)
        aborted = 0
        if not drained_in_time:
            with self._active_lock:
                stragglers = list(self._active.values())
            for flow in stragglers:
                self.degradations.record(
                    kind="drain-aborted",
                    time=self._now(),
                    path_name=flow.leg.name,
                    item_label=flow.flow_id,
                    detail="drain deadline expired",
                )
                flow.abort("drain-aborted")
                aborted += 1
            # The closes above unblock every straggler's socket op;
            # give the workers a bounded grace to run their terminal
            # accounting (journal, settle, release).
            self.admission.wait_idle(self.abort_grace_s)
        elapsed = self._now() - began
        self._journal_event(
            "service.drain.end",
            drained=in_flight - aborted,
            aborted=aborted,
            elapsed_s=elapsed,
        )
        previous = self.lifecycle.transition(STOPPED)
        self._journal_event(
            "service.state", state=STOPPED, previous=previous
        )
        unsubscribe = self._unsubscribe_revocations
        if unsubscribe is not None:
            unsubscribe()
            self._unsubscribe_revocations = None
        self._drain_report = DrainReport(
            in_flight=in_flight,
            drained=in_flight - aborted,
            aborted=aborted,
            elapsed_s=elapsed,
            met_deadline=elapsed
            <= self.drain_deadline_s + self.abort_grace_s,
        )
        self.flush_trace()
        return self._drain_report

    def __enter__(self) -> "OnloadService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        if self.lifecycle.state not in (STOPPED,):
            self.stop()

    def _close_server(self) -> None:
        with contextlib.suppress(OSError):
            self._server.close()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        """Snapshot of every flow's terminal accounting."""
        with self._records_lock:
            flows = list(self._records)
        with self._active_lock:
            active = len(self._active)
        return ServiceReport(
            flows=flows, drain=self._drain_report, active=active
        )

    def _journal_event(self, name: str, **fields: object) -> None:
        with self._journal_lock:
            self._journal.append((name, self._now(), dict(fields)))

    def flush_trace(self) -> int:
        """Emit the journal to the tracer (single-threaded); idempotent.

        Returns the number of events flushed. Times are service-
        relative seconds, emitted in journal (arrival) order.
        """
        if self._obs is None:
            return 0
        with self._journal_lock:
            entries, self._journal = self._journal, []
        for event_name, event_time, fields in entries:
            self._obs.event(event_name, time=event_time, **fields)
        return len(entries)

    # ------------------------------------------------------------------
    # Accepting
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue  # tick: re-check the running flag
            except OSError:
                return
            flow_id = f"{self.name}-{next(self._flow_ids)}"
            threading.Thread(
                target=self._serve_flow,
                args=(conn, flow_id),
                name=f"{self.name}-{flow_id}",
                daemon=True,
            ).start()

    def _gauge_pool(self) -> None:
        if self._obs is not None:
            self._obs.gauge(
                "service.active_flows", float(self.admission.active)
            )
            self._obs.gauge(
                "service.queue_depth", float(self.admission.queued)
            )

    def _record_end(
        self,
        flow_id: str,
        leg_name: str,
        admitted: bool,
        outcome: str,
        reason: str,
        status: int,
        transferred: int,
        started: float,
    ) -> None:
        latency = self._now() - started
        record = FlowRecord(
            flow_id=flow_id,
            leg=leg_name,
            admitted=admitted,
            outcome=outcome,
            reason=reason,
            status=status,
            transferred_bytes=transferred,
            latency_s=latency,
        )
        with self._records_lock:
            self._records.append(record)
        self._journal_event(
            "service.flow.end",
            flow=flow_id,
            outcome=outcome,
            reason=reason,
            status=status,
            transferred_bytes=transferred,
            latency_s=latency,
        )
        if self._obs is not None:
            self._obs.count("service.flows", outcome=outcome)
            self._obs.observe("service.flow_latency_s", latency)

    def _serve_flow(self, client: socket.socket, flow_id: str) -> None:
        """One connection, admission to terminal outcome.

        Terminal accounting runs in ``finally`` *before* the pool slot
        is released, so ``admission.wait_idle()`` returning True
        implies every admitted flow has journaled its end — the drain
        relies on that ordering.
        """
        started = self._now()
        client.settimeout(self.idle_timeout)
        decision = self.admission.try_admit()
        self._gauge_pool()
        if not decision.admitted:
            if self._obs is not None:
                self._obs.count("service.shed", reason=decision.reason)
            self.degradations.record(
                kind="overload-shed",
                time=self._now(),
                path_name=self.name,
                item_label=flow_id,
                detail=f"admission refused: {decision.reason}",
            )
            self._record_end(
                flow_id, "", False, SHED, decision.reason, 503, 0,
                started,
            )
            with contextlib.suppress(OSError):
                client.sendall(
                    httpwire.render_response(
                        503, "Service Unavailable", b"shed"
                    )
                )
            with contextlib.suppress(OSError):
                client.close()
            return
        leg = self._choose_leg()
        if leg is None:
            # Admitted but no leg currently has authority to carry the
            # flow (caps dry / permits refused on every cellular leg
            # and no ADSL fallback wired).
            try:
                if self._obs is not None:
                    self._obs.count("service.shed", reason="authority")
                self.degradations.record(
                    kind="overload-shed",
                    time=self._now(),
                    path_name=self.name,
                    item_label=flow_id,
                    detail="admission refused: no authorized leg",
                )
                self._record_end(
                    flow_id, "", True, SHED, "authority", 503, 0,
                    started,
                )
                with contextlib.suppress(OSError):
                    client.sendall(
                        httpwire.render_response(
                            503, "Service Unavailable", b"no leg"
                        )
                    )
                with contextlib.suppress(OSError):
                    client.close()
            finally:
                self.admission.release()
                self._gauge_pool()
            return
        flow = _Flow(flow_id, client, leg)
        with self._active_lock:
            self._active[flow_id] = flow
        self._journal_event(
            "service.flow.admit", flow=flow_id, leg=leg.name
        )
        if self.ledger is not None and leg.device is not None:
            self.ledger.open_flow(flow_id, leg.device)
        outcome, reason, status, moved = ABORTED, "internal", 0, 0
        try:
            outcome, reason, status, moved = self._relay_flow(flow)
        finally:
            if self.ledger is not None and leg.device is not None:
                self.ledger.settle(flow_id, float(moved), self._now())
            with contextlib.suppress(OSError):
                client.close()
            with self._active_lock:
                self._active.pop(flow_id, None)
            self._record_end(
                flow_id, leg.name, True, outcome, reason, status,
                moved, started,
            )
            self.admission.release()
            self._gauge_pool()

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------
    def _choose_leg(self) -> Optional[ServiceLeg]:
        """Round-robin over the legs that currently have authority."""
        now = self._now()
        with self._leg_lock:
            count = len(self.legs)
            for offset in range(count):
                index = (self._leg_index + offset) % count
                leg = self.legs[index]
                if leg.device is None or self.ledger is None or (
                    self.ledger.may_onload(leg.device, leg.cell, now)
                ):
                    self._leg_index = (index + 1) % count
                    return leg
        return None

    def _on_permit_revoked(self, device_name: str) -> None:
        """Backend order: abort this device's in-flight flows now."""
        with self._active_lock:
            victims = [
                flow
                for flow in self._active.values()
                if flow.leg.device == device_name
            ]
        for flow in victims:
            self.degradations.record(
                kind="permit-revoked",
                time=self._now(),
                path_name=flow.leg.name,
                item_label=flow.flow_id,
                detail=f"backend revoked {device_name}'s permit",
            )
            flow.abort("permit-revoked")

    def _meter(self, flow: _Flow, nbytes: int, direction: str) -> None:
        if nbytes <= 0:
            return
        if self._obs is not None:
            self._obs.count(
                "service.bytes", amount=float(nbytes), direction=direction
            )
        if self.ledger is not None and flow.leg.device is not None:
            self.ledger.meter(flow.flow_id, float(nbytes), self._now())

    def _dial(
        self, flow: _Flow, deadline: Deadline
    ) -> Optional[socket.socket]:
        """Connect to the flow's leg under the shared retry budget.

        Returns ``None`` when the budget (or the deadline) refuses
        another attempt; the caller sheds the flow.
        """
        attempt = 0
        while True:
            if flow.cancel.is_set() or deadline.expired:
                return None
            try:
                upstream = socket.create_connection(
                    flow.leg.address,
                    timeout=deadline.clamp(self.recv_timeout),
                )
                self.retry_budget.record_success()
                return upstream
            except OSError as exc:
                attempt += 1
                self.degradations.record(
                    kind="peer-unreachable",
                    time=self._now(),
                    path_name=flow.leg.name,
                    item_label=flow.flow_id,
                    detail=f"upstream connect failed: {exc!r}",
                )
                delay = self.retry_budget.acquire(attempt)
                if delay is None:
                    self.degradations.record(
                        kind="retry-budget-exhausted",
                        time=self._now(),
                        path_name=flow.leg.name,
                        item_label=flow.flow_id,
                        detail=(
                            f"no retry token after attempt {attempt}"
                        ),
                    )
                    return None
                # The jittered backoff sleep doubles as a cancel point.
                flow.cancel.wait(delay)

    def _respond(
        self, flow: _Flow, payload: bytes
    ) -> bool:
        """Send a response to the client; False when it vanished."""
        try:
            flow.client.sendall(payload)
            return True
        except OSError:
            return False

    def _relay_flow(
        self, flow: _Flow
    ) -> Tuple[str, str, int, int]:
        """Serve one flow's requests; returns (outcome, reason, status,
        cellular-ish bytes moved).

        Structured on the MobileProxy relay loop, with the service's
        extra machinery: flow deadline, propagated per-request
        deadline, retry budget on the upstream, cancellation points
        between every blocking step.
        """
        flow_deadline = Deadline(self.flow_deadline_s)
        moved = 0
        status = 0
        upstream = self._dial(flow, flow_deadline)
        if upstream is None:
            if flow.cancel.is_set():
                return (ABORTED, flow.abort_reason, 0, moved)
            reason = (
                "deadline-expired"
                if flow_deadline.expired
                else "retry-budget-exhausted"
            )
            self._respond(
                flow,
                httpwire.render_response(
                    503, "Service Unavailable", b"upstream"
                ),
            )
            return (SHED, reason, 503, moved)
        try:
            leftover = b""
            while True:
                if flow.cancel.is_set():
                    return (ABORTED, flow.abort_reason, status, moved)
                if flow_deadline.expired:
                    return self._expire_flow(flow, moved)
                try:
                    # The overall bounds are the slow-loris defence: a
                    # peer trickling bytes under the per-recv timeout
                    # still stalls out when the whole read outlives
                    # twice the idle/recv budget (or the flow deadline,
                    # whichever is tighter).
                    head, leftover = httpwire.read_until_blank_line(
                        flow.client,
                        leftover,
                        timeout=flow_deadline.clamp(self.idle_timeout),
                        overall_timeout=flow_deadline.clamp(
                            2.0 * self.idle_timeout
                        ),
                    )
                    first, headers = httpwire.parse_head(head)
                    length = httpwire.parse_content_length(headers)
                    request_budget = httpwire.parse_deadline(headers)
                    body = httpwire.read_body(
                        flow.client,
                        leftover,
                        length,
                        timeout=flow_deadline.clamp(self.recv_timeout),
                        overall_timeout=flow_deadline.clamp(
                            4.0 * self.recv_timeout
                        ),
                    )
                except WireError as exc:
                    return self._end_on_client_error(
                        flow, exc, flow_deadline, status, moved
                    )
                except OSError:
                    return (
                        ABORTED,
                        flow.abort_reason or "path-fault",
                        status,
                        moved,
                    )
                leftover = b""
                deadline = self._effective_deadline(
                    flow_deadline, request_budget
                )
                if deadline.expired:
                    self.degradations.record(
                        kind="deadline-expired",
                        time=self._now(),
                        path_name=flow.leg.name,
                        item_label=flow.flow_id,
                        detail="request arrived with a spent budget",
                    )
                    self._respond(
                        flow,
                        httpwire.render_response(
                            504, "Deadline Expired"
                        ),
                    )
                    return (SHED, "deadline-expired", 504, moved)
                exchanged = self._exchange_upstream(
                    flow, upstream, first, headers, body, deadline
                )
                if exchanged is None:
                    if flow.cancel.is_set():
                        return (
                            ABORTED, flow.abort_reason, status, moved
                        )
                    self._respond(
                        flow,
                        httpwire.render_response(
                            503, "Service Unavailable", b"upstream"
                        ),
                    )
                    return (SHED, "retry-budget-exhausted", 503, moved)
                upstream, status, response, up_bytes = exchanged
                moved += up_bytes + len(response)
                self._meter(flow, up_bytes, "up")
                self._meter(flow, len(response), "down")
                payload = httpwire.render_response(
                    status, "OK" if status == 200 else "Err", response
                )
                if not self._respond(flow, payload):
                    return (
                        ABORTED,
                        flow.abort_reason or "path-fault",
                        status,
                        moved,
                    )
        finally:
            with contextlib.suppress(OSError):
                upstream.close()

    def _expire_flow(
        self, flow: _Flow, moved: int
    ) -> Tuple[str, str, int, int]:
        self.degradations.record(
            kind="deadline-expired",
            time=self._now(),
            path_name=flow.leg.name,
            item_label=flow.flow_id,
            detail=f"flow outlived its {self.flow_deadline_s}s budget",
        )
        self._respond(
            flow, httpwire.render_response(504, "Deadline Expired")
        )
        return (ABORTED, "deadline-expired", 504, moved)

    def _end_on_client_error(
        self,
        flow: _Flow,
        exc: WireError,
        flow_deadline: Deadline,
        status: int,
        moved: int,
    ) -> Tuple[str, str, int, int]:
        """Classify a client-side wire failure into a terminal outcome."""
        if flow.cancel.is_set():
            return (ABORTED, flow.abort_reason, status, moved)
        if "closed before request" in str(exc):
            # Clean end of a keep-alive connection.
            return (COMPLETED, "", status or 200, moved)
        if flow_deadline.expired:
            return self._expire_flow(flow, moved)
        stalled = isinstance(exc, StallError)
        self.degradations.record(
            kind="stall" if stalled else "bad-peer",
            time=self._now(),
            path_name=flow.leg.name,
            item_label=flow.flow_id,
            detail=f"client wire failure: {exc!r}",
        )
        self._respond(
            flow, httpwire.render_response(400, "Bad Request")
        )
        return (COMPLETED, "stall" if stalled else "bad-peer", 400, moved)

    @staticmethod
    def _effective_deadline(
        flow_deadline: Deadline, request_budget: Optional[float]
    ) -> Deadline:
        """The tighter of the flow's own budget and the request's."""
        remaining = flow_deadline.remaining()
        if request_budget is None:
            return flow_deadline
        if remaining is None or request_budget < remaining:
            return Deadline(request_budget)
        return flow_deadline

    def _exchange_upstream(
        self,
        flow: _Flow,
        upstream: socket.socket,
        first: str,
        headers: Dict[str, str],
        body: bytes,
        deadline: Deadline,
    ) -> Optional[Tuple[socket.socket, int, bytes, int]]:
        """Forward one request upstream; retry under the shared budget.

        Returns ``(upstream, status, response body, bytes sent up)``,
        with ``upstream`` possibly a fresh connection after a retry, or
        ``None`` when the retry budget or the deadline gave out.
        """
        request = self._forward_request(first, headers, body, deadline)
        attempt = 0
        while True:
            if flow.cancel.is_set() or deadline.expired:
                return None
            try:
                upstream.settimeout(deadline.clamp(self.recv_timeout))
                upstream.sendall(request)
                status, _, response = httpwire.read_response(
                    upstream,
                    timeout=deadline.clamp(self.recv_timeout),
                )
                self.retry_budget.record_success()
                return (upstream, status, response, len(body))
            except (WireError, OSError) as exc:
                stalled = isinstance(exc, (StallError, socket.timeout))
                self.degradations.record(
                    kind="stall" if stalled else "path-fault",
                    time=self._now(),
                    path_name=flow.leg.name,
                    item_label=flow.flow_id,
                    detail=f"upstream exchange failed: {exc!r}",
                )
                attempt += 1
                delay = self.retry_budget.acquire(attempt)
                if delay is None:
                    self.degradations.record(
                        kind="retry-budget-exhausted",
                        time=self._now(),
                        path_name=flow.leg.name,
                        item_label=flow.flow_id,
                        detail=(
                            f"no retry token after attempt {attempt}"
                        ),
                    )
                    return None
                flow.cancel.wait(delay)
                with contextlib.suppress(OSError):
                    upstream.close()
                fresh = self._dial(flow, deadline)
                if fresh is None:
                    return None
                upstream = fresh

    def _forward_request(
        self,
        first: str,
        headers: Dict[str, str],
        body: bytes,
        deadline: Deadline,
    ) -> bytes:
        """Re-render the client's request for the upstream leg.

        The deadline header is rewritten with the *remaining* budget at
        forward time, so the upstream hop clamps to what is actually
        left rather than what the client started with.
        """
        parts = first.split(" ")
        method = parts[0] if parts else "GET"
        path = parts[1] if len(parts) > 1 else "/"
        host = headers.get("host", "origin")
        extra: Dict[str, str] = {}
        remaining = deadline.header_value()
        if remaining is not None:
            extra[httpwire.DEADLINE_HEADER] = remaining
        return httpwire.render_request(
            method, path, host, headers=extra or None, body=body
        )
