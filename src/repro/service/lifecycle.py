"""Service lifecycle: the state machine and deadline budgets.

The long-running onload service moves through exactly four states::

    starting -> serving -> draining -> stopped
        \\__________________________/^
         (a service that fails to start stops directly)

:class:`Lifecycle` enforces those edges under a lock and lets other
threads wait for a state. :class:`Deadline` is the service's time
budget primitive: a monotonic expiry that clamps per-read socket
timeouts (via :func:`repro.proto.httpwire.clamp_timeout`) and renders
itself into the propagated deadline header.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.proto import httpwire

__all__ = [
    "DRAINING",
    "Deadline",
    "Lifecycle",
    "LifecycleError",
    "SERVING",
    "STARTING",
    "STOPPED",
]

STARTING = "starting"
SERVING = "serving"
DRAINING = "draining"
STOPPED = "stopped"

#: Legal edges of the state machine.
_TRANSITIONS = {
    STARTING: frozenset({SERVING, STOPPED}),
    SERVING: frozenset({DRAINING}),
    DRAINING: frozenset({STOPPED}),
    STOPPED: frozenset(),
}


class LifecycleError(RuntimeError):
    """An illegal lifecycle transition was attempted."""


class Lifecycle:
    """Thread-safe service state machine with waitable transitions."""

    def __init__(
        self, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._state = STARTING
        #: Every state entered, with seconds-since-construction stamps.
        self.history: List[Tuple[str, float]] = [(STARTING, 0.0)]

    @property
    def state(self) -> str:
        """The current lifecycle state."""
        with self._lock:
            return self._state

    def elapsed(self) -> float:
        """Seconds since the lifecycle was constructed."""
        return self._clock() - self._started

    def transition(self, to: str) -> str:
        """Move to state ``to``; returns the state left.

        Raises :class:`LifecycleError` for an edge the machine does not
        have — a double drain, serving after stop, and so on — so a
        lifecycle bug fails loudly instead of leaving a half-stopped
        service.
        """
        with self._changed:
            allowed = _TRANSITIONS.get(self._state, frozenset())
            if to not in allowed:
                raise LifecycleError(
                    f"illegal transition {self._state!r} -> {to!r}"
                )
            previous = self._state
            self._state = to
            self.history.append((to, self.elapsed()))
            self._changed.notify_all()
            return previous

    def wait_for(self, state: str, timeout: float) -> bool:
        """Block until the machine reaches ``state``; False on timeout."""
        deadline = self._clock() + timeout
        with self._changed:
            while self._state != state:
                remaining = deadline - self._clock()
                if remaining <= 0.0:
                    return False
                self._changed.wait(remaining)
            return True


class Deadline:
    """A monotonic time budget, propagated hop to hop.

    ``Deadline(None)`` is the unbounded budget: never expired, clamps
    nothing, renders no header. Built either from a local budget or
    from a peer's propagated header value
    (:meth:`from_header_value`).
    """

    def __init__(
        self,
        budget_s: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._expires_at = (
            None if budget_s is None else clock() + budget_s
        )

    @classmethod
    def from_header_value(
        cls,
        budget_s: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Budget parsed by :func:`repro.proto.httpwire.parse_deadline`."""
        return cls(budget_s, clock=clock)

    def remaining(self) -> Optional[float]:
        """Seconds left in the budget (``None``: unbounded)."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def clamp(self, timeout: float) -> float:
        """Bound a per-read socket timeout by the remaining budget."""
        return httpwire.clamp_timeout(timeout, self.remaining())

    def header_value(self) -> Optional[str]:
        """The value to forward in the deadline header, or ``None``."""
        remaining = self.remaining()
        if remaining is None:
            return None
        return f"{remaining:.3f}"
