"""Per-flow admission control and backpressure.

The pool is bounded twice: ``max_active`` flows may be in flight and at
most ``max_queued`` more may *wait* for a slot, for at most
``queue_timeout_s``. Everything beyond that is shed immediately with an
explicit decision — the service never queues unboundedly, so overload
degrades to fast 503s instead of collapsing into ever-growing latency
(the ISSUE's "explicit shedding, never unbounded queueing" rule).

Shed reasons form a tiny vocabulary of their own (they label the
``service.shed`` metric and the detail of ``overload-shed``
degradations): ``overload`` (pool and queue both full),
``queue-timeout`` (a slot never freed up in time), ``draining`` (the
service is shutting down).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "SHED_DRAINING",
    "SHED_OVERLOAD",
    "SHED_QUEUE_TIMEOUT",
]

SHED_OVERLOAD = "overload"
SHED_QUEUE_TIMEOUT = "queue-timeout"
SHED_DRAINING = "draining"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer for one flow."""

    admitted: bool
    #: Shed reason when refused (empty when admitted).
    reason: str = ""
    #: Seconds the flow waited in the admission queue.
    queued_s: float = 0.0


@dataclass
class AdmissionStats:
    """Counters the controller keeps (snapshot via ``stats()``)."""

    admitted: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    peak_active: int = 0
    peak_queued: int = 0


class AdmissionController:
    """Bounded flow pool with a bounded, deadline-bounded wait queue."""

    def __init__(
        self,
        max_active: int,
        max_queued: int = 0,
        queue_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued}")
        if queue_timeout_s < 0.0:
            raise ValueError("queue_timeout_s must be >= 0")
        self.max_active = max_active
        self.max_queued = max_queued
        self.queue_timeout_s = queue_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self._draining = False
        self._stats = AdmissionStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Flows currently holding a pool slot."""
        with self._lock:
            return self._active

    @property
    def queued(self) -> int:
        """Flows currently waiting for a slot."""
        with self._lock:
            return self._queued

    def stats(self) -> AdmissionStats:
        """A copy of the counters (safe to read after the fact)."""
        with self._lock:
            return AdmissionStats(
                admitted=self._stats.admitted,
                shed=dict(self._stats.shed),
                peak_active=self._stats.peak_active,
                peak_queued=self._stats.peak_queued,
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _shed(self, reason: str, queued_s: float) -> AdmissionDecision:
        self._stats.shed[reason] = self._stats.shed.get(reason, 0) + 1
        return AdmissionDecision(
            admitted=False, reason=reason, queued_s=queued_s
        )

    def _grant(self, queued_s: float) -> AdmissionDecision:
        self._active += 1
        self._stats.admitted += 1
        self._stats.peak_active = max(
            self._stats.peak_active, self._active
        )
        return AdmissionDecision(admitted=True, queued_s=queued_s)

    def try_admit(self) -> AdmissionDecision:
        """Decide one flow; may block up to ``queue_timeout_s``.

        Never blocks longer: a flow either gets a slot, or an explicit
        shed decision with a reason.
        """
        started = self._clock()
        with self._freed:
            if self._draining:
                return self._shed(SHED_DRAINING, 0.0)
            if self._active < self.max_active:
                return self._grant(0.0)
            if self._queued >= self.max_queued:
                return self._shed(SHED_OVERLOAD, 0.0)
            self._queued += 1
            self._stats.peak_queued = max(
                self._stats.peak_queued, self._queued
            )
            deadline = started + self.queue_timeout_s
            try:
                while True:
                    if self._draining:
                        return self._shed(
                            SHED_DRAINING, self._clock() - started
                        )
                    if self._active < self.max_active:
                        return self._grant(self._clock() - started)
                    remaining = deadline - self._clock()
                    if remaining <= 0.0:
                        return self._shed(
                            SHED_QUEUE_TIMEOUT, self._clock() - started
                        )
                    self._freed.wait(remaining)
            finally:
                self._queued -= 1

    def release(self) -> None:
        """Return an admitted flow's slot to the pool."""
        with self._freed:
            if self._active <= 0:
                raise RuntimeError("release() without a matching admit")
            self._active -= 1
            self._freed.notify_all()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting: queued flows shed now, new flows shed fast."""
        with self._freed:
            self._draining = True
            self._freed.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no flow holds a slot; False on timeout."""
        deadline = self._clock() + timeout
        with self._freed:
            while self._active > 0:
                remaining = deadline - self._clock()
                if remaining <= 0.0:
                    return False
                self._freed.wait(remaining)
            return True
