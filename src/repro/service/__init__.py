"""Long-running onload service: overload control, drain, chaos.

The ``proto`` package proves the 3GOL data path works once; this
package keeps it working *continuously*. :class:`OnloadService` is a
real loopback TCP relay in front of the ADSL gateway and the phones'
shaped 3G proxies, built for sustained operation:

* :mod:`repro.service.admission` — bounded flow pool + bounded wait
  queue; overload sheds explicitly (503 + ``overload-shed``), never
  queues unboundedly;
* :mod:`repro.service.lifecycle` — the
  starting → serving → draining → stopped state machine and the
  :class:`~repro.service.lifecycle.Deadline` budgets propagated hop to
  hop via the ``x-3gol-deadline-s`` header;
* :mod:`repro.service.server` — the relay itself: shared
  :class:`~repro.core.resilience.RetryBudget`, cap/permit authority
  through a :class:`~repro.core.resilience.FlowLedger`, graceful drain
  with straggler abort and byte true-up;
* :mod:`repro.service.chaos` / :mod:`repro.service.loadgen` — the
  seeded adversarial fleet and the seeded open-loop workload that the
  ``repro-serve smoke`` harness fires at a live service.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
)
from repro.service.chaos import ChaosPlan, build_plan, run_plan
from repro.service.lifecycle import (
    Deadline,
    Lifecycle,
    LifecycleError,
)
from repro.service.loadgen import (
    LoadPlan,
    LoadReport,
    build_load_plan,
    run_load,
)
from repro.service.server import (
    DrainReport,
    FlowRecord,
    OnloadService,
    ServiceLeg,
    ServiceReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ChaosPlan",
    "Deadline",
    "DrainReport",
    "FlowRecord",
    "Lifecycle",
    "LifecycleError",
    "LoadPlan",
    "LoadReport",
    "OnloadService",
    "ServiceLeg",
    "ServiceReport",
    "build_load_plan",
    "build_plan",
    "run_load",
    "run_plan",
]
