"""HTTP Live Streaming (HLS) modelling.

The paper's downlink application is an HLS player (§4.1): the video is cut
into short segments, listed in an extended M3U (m3u8) playlist that the
player fetches first, then requested sequentially with one GET each.
Playback starts after an application-dependent pre-buffer fills.

We reproduce the paper's exact test asset: Apple's "bipbop" sample
re-segmented at 10 s per segment, duration forced to 200 s (the median
YouTube video length the paper cites), at the original four qualities
Q1=200, Q2=311, Q3=484, Q4=738 kbps. The playlist renderer/parser speaks
enough real m3u8 for the loopback prototype and the HLS-aware proxy to
interoperate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.proto.errors import PlaylistError
from repro.util.units import kbps, transfer_rate, transfer_volume
from repro.util.validate import check_positive

#: Default segment duration the paper keeps from the bipbop sample (§5.1).
DEFAULT_SEGMENT_SECONDS = 10.0
#: Video duration the paper forces: the median YouTube video length [2].
DEFAULT_VIDEO_SECONDS = 200.0


@dataclass(frozen=True)
class VideoQuality:
    """One rendition: a name and its encoded bitrate."""

    name: str
    bitrate_bps: float

    def __post_init__(self) -> None:
        check_positive("bitrate_bps", self.bitrate_bps)

    def segment_bytes(self, duration_s: float) -> float:
        """Encoded size of a segment of ``duration_s`` seconds."""
        check_positive("duration_s", duration_s)
        return transfer_volume(self.bitrate_bps, duration_s)


#: The four bipbop qualities (§5.1: 200/311/484/738 kbps).
BIPBOP_QUALITIES: Tuple[VideoQuality, ...] = (
    VideoQuality("Q1", kbps(200.0)),
    VideoQuality("Q2", kbps(311.0)),
    VideoQuality("Q3", kbps(484.0)),
    VideoQuality("Q4", kbps(738.0)),
)

_QUALITY_BY_NAME: Dict[str, VideoQuality] = {
    q.name: q for q in BIPBOP_QUALITIES
}


def quality_by_name(name: str) -> VideoQuality:
    """Look up one of the bipbop qualities by name (Q1..Q4)."""
    try:
        return _QUALITY_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown quality {name!r}; expected one of "
            f"{sorted(_QUALITY_BY_NAME)}"
        ) from None


@dataclass(frozen=True)
class MediaSegment:
    """One HLS media segment: a URI, a duration and an encoded size."""

    index: int
    uri: str
    duration_s: float
    size_bytes: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"segment index must be >= 0, got {self.index}")
        check_positive("duration_s", self.duration_s)
        check_positive("size_bytes", self.size_bytes)


class HlsPlaylist:
    """A media playlist: an ordered list of segments for one quality."""

    def __init__(
        self,
        video_name: str,
        quality: VideoQuality,
        segments: Sequence[MediaSegment],
    ) -> None:
        if not segments:
            raise ValueError("playlist must contain at least one segment")
        indices = [s.index for s in segments]
        if indices != list(range(len(segments))):
            raise ValueError("segment indices must be 0..n-1 in order")
        self.video_name = video_name
        self.quality = quality
        self.segments: Tuple[MediaSegment, ...] = tuple(segments)

    @property
    def duration_s(self) -> float:
        """Total playout duration."""
        return sum(s.duration_s for s in self.segments)

    @property
    def total_bytes(self) -> float:
        """Total encoded size of the rendition."""
        return sum(s.size_bytes for s in self.segments)

    def segments_for_prebuffer(self, fraction: float) -> Tuple[MediaSegment, ...]:
        """Segments the player must hold before starting playout.

        ``fraction`` is the pre-buffer amount as a fraction of the video
        *duration* (the §5.2 sweep runs 20%..100%); at least one segment is
        always required.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        needed = fraction * self.duration_s
        chosen: List[MediaSegment] = []
        buffered = 0.0
        for segment in self.segments:
            chosen.append(segment)
            buffered += segment.duration_s
            if buffered >= needed - 1e-9:
                break
        return tuple(chosen)

    @property
    def playlist_uri(self) -> str:
        """URI of this media playlist."""
        return f"/{self.video_name}/{self.quality.name}/index.m3u8"


class VideoAsset:
    """A multi-quality video: one media playlist per rendition."""

    def __init__(
        self,
        name: str,
        duration_s: float = DEFAULT_VIDEO_SECONDS,
        segment_s: float = DEFAULT_SEGMENT_SECONDS,
        qualities: Sequence[VideoQuality] = BIPBOP_QUALITIES,
    ) -> None:
        check_positive("duration_s", duration_s)
        check_positive("segment_s", segment_s)
        if not qualities:
            raise ValueError("need at least one quality")
        self.name = name
        self.duration_s = float(duration_s)
        self.segment_s = float(segment_s)
        self.playlists: Dict[str, HlsPlaylist] = {}
        n_full = int(math.floor(duration_s / segment_s))
        tail = duration_s - n_full * segment_s
        for quality in qualities:
            segments = []
            for i in range(n_full):
                segments.append(
                    MediaSegment(
                        index=i,
                        uri=f"/{name}/{quality.name}/seg{i:05d}.ts",
                        duration_s=segment_s,
                        size_bytes=quality.segment_bytes(segment_s),
                    )
                )
            if tail > 1e-9:
                segments.append(
                    MediaSegment(
                        index=n_full,
                        uri=f"/{name}/{quality.name}/seg{n_full:05d}.ts",
                        duration_s=tail,
                        size_bytes=quality.segment_bytes(tail),
                    )
                )
            self.playlists[quality.name] = HlsPlaylist(name, quality, segments)

    def playlist(self, quality_name: str) -> HlsPlaylist:
        """Media playlist for one rendition."""
        try:
            return self.playlists[quality_name]
        except KeyError:
            raise KeyError(
                f"video {self.name!r} has no quality {quality_name!r}"
            ) from None

    @property
    def master_uri(self) -> str:
        """URI of the master playlist listing all renditions."""
        return f"/{self.name}/master.m3u8"


def make_bipbop_video(
    duration_s: float = DEFAULT_VIDEO_SECONDS,
    segment_s: float = DEFAULT_SEGMENT_SECONDS,
) -> VideoAsset:
    """The paper's test video: bipbop at 200 s, 10 s segments, Q1-Q4."""
    return VideoAsset(
        "bipbop",
        duration_s=duration_s,
        segment_s=segment_s,
        qualities=BIPBOP_QUALITIES,
    )


# ---------------------------------------------------------------------------
# m3u8 wire format (subset)
# ---------------------------------------------------------------------------


def render_m3u8(playlist: HlsPlaylist) -> str:
    """Render a media playlist in m3u8 text form.

    Covers the subset of RFC 8216 the prototype needs: header, target
    duration, EXTINF per segment, ENDLIST. Segment sizes are carried in a
    private ``#X-SIZE`` tag so the simulator can round-trip them.
    """
    lines = [
        "#EXTM3U",
        "#EXT-X-VERSION:3",
        f"#EXT-X-TARGETDURATION:{int(math.ceil(max(s.duration_s for s in playlist.segments)))}",
        "#EXT-X-MEDIA-SEQUENCE:0",
    ]
    for segment in playlist.segments:
        lines.append(f"#EXTINF:{segment.duration_s:.3f},")
        lines.append(f"#X-SIZE:{int(round(segment.size_bytes))}")
        lines.append(segment.uri)
    lines.append("#EXT-X-ENDLIST")
    return "\n".join(lines) + "\n"


#: Upper bound on segments a parsed playlist may carry: far above any
#: real rendition (200 s / 10 s = 20 segments) yet low enough that an
#: adversarial playlist cannot balloon the player's memory.
MAX_PLAYLIST_SEGMENTS = 65_536


def _parse_tag_number(tag: str, raw: str) -> float:
    """Strictly parse a numeric tag payload (finite, positive)."""
    try:
        value = float(raw)
    except ValueError:
        raise PlaylistError(f"{tag} carries non-numeric value {raw!r}") from None
    if not math.isfinite(value):
        raise PlaylistError(f"{tag} carries non-finite value {raw!r}")
    if value <= 0.0:
        raise PlaylistError(f"{tag} must be positive, got {raw!r}")
    return value


def parse_m3u8(
    text: Union[str, bytes],
    video_name: str = "video",
    quality: Optional[VideoQuality] = None,
) -> HlsPlaylist:
    """Parse an m3u8 media playlist rendered by :func:`render_m3u8`.

    Segment sizes come from the ``#X-SIZE`` tag when present, otherwise
    from ``quality.bitrate_bps * duration`` (a real playlist does not carry
    sizes, so a quality hint is then required).

    The parse path is fuzz-hardened: any malformed input — bad UTF-8,
    non-numeric or non-finite tag values, orphan URIs, structural lies —
    raises :class:`~repro.proto.errors.PlaylistError` (a
    :class:`ProtocolError`), never a bare builtin exception.
    """
    if isinstance(text, bytes):
        try:
            text = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PlaylistError(f"playlist is not valid UTF-8: {exc}") from None
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise PlaylistError("not an m3u8 playlist (missing #EXTM3U)")
    segments: List[MediaSegment] = []
    duration: Optional[float] = None
    size: Optional[float] = None
    for line in lines[1:]:
        if line.startswith("#EXTINF:"):
            raw = line[len("#EXTINF:"):].rstrip(",").split(",")[0]
            duration = _parse_tag_number("#EXTINF", raw)
        elif line.startswith("#X-SIZE:"):
            size = _parse_tag_number("#X-SIZE", line[len("#X-SIZE:"):])
        elif not line.startswith("#"):
            if duration is None:
                raise PlaylistError(f"segment {line!r} has no #EXTINF")
            if size is None:
                if quality is None:
                    raise PlaylistError(
                        f"segment {line!r} has no #X-SIZE and no quality hint"
                    )
                try:
                    size = quality.segment_bytes(duration)
                except ValueError as exc:
                    raise PlaylistError(
                        f"segment {line!r} has invalid duration: {exc}"
                    ) from exc
            if len(segments) >= MAX_PLAYLIST_SEGMENTS:
                raise PlaylistError(
                    f"playlist exceeds {MAX_PLAYLIST_SEGMENTS} segments"
                )
            try:
                segment = MediaSegment(
                    index=len(segments),
                    uri=line,
                    duration_s=duration,
                    size_bytes=size,
                )
            except ValueError as exc:
                raise PlaylistError(f"invalid segment {line!r}: {exc}") from exc
            segments.append(segment)
            duration = None
            size = None
    if not segments:
        raise PlaylistError("playlist contains no segments")
    if quality is None:
        try:
            # Per-segment values are validated, but their *sums* can
            # still overflow to inf on a hostile playlist.
            mean_bitrate = transfer_rate(
                sum(s.size_bytes for s in segments),
                sum(s.duration_s for s in segments),
            )
            quality = VideoQuality("parsed", mean_bitrate)
        except ValueError as exc:
            raise PlaylistError(f"inconsistent playlist: {exc}") from exc
    try:
        return HlsPlaylist(video_name, quality, segments)
    except ValueError as exc:
        raise PlaylistError(f"inconsistent playlist: {exc}") from exc
