"""DASH (MPEG-DASH) manifest support.

§4.1: "HLS is similar to Dynamic Adaptive Streaming over HTTP (DASH)".
The 3GOL proxy's trick — intercept the manifest, prefetch segments in
parallel — works identically for DASH; this module provides the MPD
(Media Presentation Description) counterpart of :mod:`repro.web.hls`:
rendering a :class:`~repro.web.hls.VideoAsset` as an MPD and parsing an
MPD (SegmentTemplate-with-duration profile) back into playlists the
proxy can schedule.

Only the static-VoD subset the proxy needs is implemented — one period,
one adaptation set, one representation per quality, ``SegmentTemplate``
with ``$Number$`` addressing.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from typing import Dict, List

from repro.proto.errors import PlaylistError
from repro.web.hls import (
    MAX_PLAYLIST_SEGMENTS,
    HlsPlaylist,
    MediaSegment,
    VideoAsset,
    VideoQuality,
)

_MPD_NS = "urn:mpeg:dash:schema:mpd:2011"


def _duration_attr(seconds: float) -> str:
    """ISO-8601 duration, the MPD attribute format."""
    return f"PT{seconds:.3f}S"


def _parse_duration(value: str) -> float:
    """Parse the PT…S subset of ISO-8601 durations used here."""
    if not value.startswith("PT") or not value.endswith("S"):
        raise PlaylistError(f"unsupported MPD duration {value!r}")
    try:
        return float(value[2:-1])
    except ValueError:
        raise PlaylistError(f"malformed MPD duration {value!r}") from None


def render_mpd(video: VideoAsset) -> str:
    """Render a video asset as a static-VoD MPD."""
    ET.register_namespace("", _MPD_NS)
    mpd = ET.Element(
        f"{{{_MPD_NS}}}MPD",
        {
            "type": "static",
            "mediaPresentationDuration": _duration_attr(video.duration_s),
            "profiles": "urn:mpeg:dash:profile:isoff-on-demand:2011",
        },
    )
    period = ET.SubElement(mpd, f"{{{_MPD_NS}}}Period")
    adaptation = ET.SubElement(
        period,
        f"{{{_MPD_NS}}}AdaptationSet",
        {"contentType": "video", "mimeType": "video/mp2t"},
    )
    for name, playlist in sorted(video.playlists.items()):
        representation = ET.SubElement(
            adaptation,
            f"{{{_MPD_NS}}}Representation",
            {
                "id": name,
                "bandwidth": str(int(playlist.quality.bitrate_bps)),
            },
        )
        ET.SubElement(
            representation,
            f"{{{_MPD_NS}}}SegmentTemplate",
            {
                "media": f"/{video.name}/{name}/seg$Number%05d$.ts",
                "startNumber": "0",
                "duration": str(int(video.segment_s * 1000)),
                "timescale": "1000",
            },
        )
    return ET.tostring(mpd, encoding="unicode", xml_declaration=True)


def parse_mpd(text: str, video_name: str = "video") -> Dict[str, HlsPlaylist]:
    """Parse an MPD into per-representation playlists.

    Segment sizes are derived from the representation bandwidth and the
    template duration (the same bitrate-times-duration arithmetic a DASH
    client uses for buffer planning).
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PlaylistError(f"not an MPD: {exc}") from None
    if not root.tag.endswith("MPD"):
        raise PlaylistError(f"not an MPD root element: {root.tag!r}")
    duration_attr = root.attrib.get("mediaPresentationDuration")
    if duration_attr is None:
        raise PlaylistError("MPD has no mediaPresentationDuration")
    total_duration = _parse_duration(duration_attr)
    ns = {"mpd": _MPD_NS}
    playlists: Dict[str, HlsPlaylist] = {}
    for representation in root.findall(
        ".//mpd:Representation", ns
    ) or root.findall(".//Representation"):
        rep_id = representation.attrib.get("id", "")
        template = representation.find("mpd:SegmentTemplate", ns)
        if template is None:
            template = representation.find("SegmentTemplate")
        if template is None:
            raise PlaylistError(
                f"representation {rep_id!r} has no template"
            )
        media = template.attrib.get("media")
        if not rep_id or not media or "media" not in template.attrib:
            raise PlaylistError(
                f"representation {rep_id!r} is missing id/media attributes"
            )
        try:
            bandwidth = float(representation.attrib["bandwidth"])
            timescale = float(template.attrib.get("timescale", "1"))
            segment_s = float(template.attrib["duration"]) / timescale
            start = int(template.attrib.get("startNumber", "0"))
            quality = VideoQuality(rep_id, bandwidth)
        except (KeyError, ValueError, ZeroDivisionError) as exc:
            raise PlaylistError(
                f"representation {rep_id!r} has malformed attributes: {exc}"
            ) from exc
        if not math.isfinite(segment_s) or segment_s <= 0.0:
            raise PlaylistError(
                f"representation {rep_id!r} has non-positive segment "
                f"duration {segment_s!r}"
            )
        if not math.isfinite(total_duration) or (
            total_duration / segment_s > MAX_PLAYLIST_SEGMENTS
        ):
            raise PlaylistError(
                f"MPD would expand past {MAX_PLAYLIST_SEGMENTS} segments"
            )
        segments: List[MediaSegment] = []
        remaining = total_duration
        number = start
        while remaining > 1e-9:
            duration = min(segment_s, remaining)
            uri = media.replace("$Number%05d$", f"{number:05d}").replace(
                "$Number$", str(number)
            )
            try:
                segments.append(
                    MediaSegment(
                        index=number - start,
                        uri=uri,
                        duration_s=duration,
                        size_bytes=quality.segment_bytes(duration),
                    )
                )
            except ValueError as exc:
                raise PlaylistError(
                    f"invalid segment in representation {rep_id!r}: {exc}"
                ) from exc
            remaining -= duration
            number += 1
        try:
            playlists[rep_id] = HlsPlaylist(video_name, quality, segments)
        except ValueError as exc:
            raise PlaylistError(
                f"inconsistent representation {rep_id!r}: {exc}"
            ) from exc
    if not playlists:
        raise PlaylistError("MPD contains no representations")
    return playlists
