"""HTTP substrate: the application layer 3GOL accelerates.

The paper augments two HTTP applications (§4.1): HLS video-on-demand on
the downlink and multipart photo upload on the uplink. This package models
both at the granularity the evaluation needs — request/response objects,
m3u8 playlists and segment sizing, multipart POST overheads, and an origin
server with the §5 testbed's bandwidth caps.
"""

from repro.web.messages import Headers, HttpRequest, HttpResponse
from repro.web.hls import (
    HlsPlaylist,
    MediaSegment,
    VideoAsset,
    VideoQuality,
    BIPBOP_QUALITIES,
    make_bipbop_video,
    parse_m3u8,
    render_m3u8,
)
from repro.web.upload import (
    MultipartPart,
    MultipartUpload,
    Photo,
    decode_multipart,
    encode_multipart,
    encode_photo_upload,
    photo_upload_requests,
)
from repro.web.origin import OriginServer
from repro.web.client import SequentialHttpClient, TransferLogEntry

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HlsPlaylist",
    "MediaSegment",
    "VideoAsset",
    "VideoQuality",
    "BIPBOP_QUALITIES",
    "make_bipbop_video",
    "parse_m3u8",
    "render_m3u8",
    "MultipartPart",
    "MultipartUpload",
    "Photo",
    "decode_multipart",
    "encode_multipart",
    "encode_photo_upload",
    "photo_upload_requests",
    "OriginServer",
    "SequentialHttpClient",
    "TransferLogEntry",
]
