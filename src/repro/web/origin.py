"""Origin web server model.

§5 of the paper uses "a dedicated well provisioned web server, featuring a
stable bandwidth of 100 Mbps in download and 40 Mbps in upload", with
caching disabled. This class models that server: it resolves simulated
requests (playlists, segments, uploads) to response volumes, and exposes
its NIC as simulator links so a saturated server is a real bottleneck.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netsim.link import Link
from repro.web.hls import HlsPlaylist, VideoAsset, render_m3u8
from repro.web.messages import HttpRequest, HttpResponse
from repro.util.units import mbps
from repro.util.validate import check_positive


class OriginServer:
    """The content server of the evaluation testbed."""

    def __init__(
        self,
        down_bps: float = mbps(100.0),
        up_bps: float = mbps(40.0),
        name: str = "origin",
    ) -> None:
        check_positive("down_bps", down_bps)
        check_positive("up_bps", up_bps)
        self.name = name
        self.downlink = Link(f"{name}-down", down_bps)
        self.uplink = Link(f"{name}-up", up_bps)
        self._videos: Dict[str, VideoAsset] = {}
        self._segment_index: Dict[str, float] = {}
        self._playlist_index: Dict[str, HlsPlaylist] = {}
        #: Upload payloads received, by URL, for test assertions.
        self.received_uploads: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------
    def host_video(self, video: VideoAsset) -> None:
        """Publish a video: registers all playlists and segments."""
        self._videos[video.name] = video
        for playlist in video.playlists.values():
            self._playlist_index[playlist.playlist_uri] = playlist
            for segment in playlist.segments:
                self._segment_index[segment.uri] = segment.size_bytes

    def video(self, name: str) -> VideoAsset:
        """Look up a hosted video."""
        try:
            return self._videos[name]
        except KeyError:
            raise KeyError(f"no video {name!r} hosted") from None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Resolve a simulated request to a response volume.

        GETs for known playlists return the rendered m3u8 text; GETs for
        known segments return their encoded size; POSTs are accepted and
        their payload recorded; anything else is a 404.
        """
        if request.method == "POST":
            self.received_uploads[request.url] = (
                self.received_uploads.get(request.url, 0.0)
                + request.body_bytes
            )
            return HttpResponse(status=200, body_bytes=100.0)
        path = request.path
        playlist = self._playlist_index.get(path)
        if playlist is not None:
            return HttpResponse(status=200, body=render_m3u8(playlist))
        size = self._segment_index.get(path)
        if size is not None:
            return HttpResponse(status=200, body_bytes=size)
        return HttpResponse(status=404, body_bytes=0.0)

    def lookup_size(self, path: str) -> Optional[float]:
        """Response size for a GET of ``path`` (None when unknown)."""
        playlist = self._playlist_index.get(path)
        if playlist is not None:
            return float(len(render_m3u8(playlist).encode("utf-8")))
        return self._segment_index.get(path)
