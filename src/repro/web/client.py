"""Sequential HTTP client.

This models the *unassisted* application behaviour — the baseline every
3GOL comparison is made against: an HLS player requesting segments one at
a time over the house's single connection (§4.1: "the player sequentially
requests the segments, one at a time, in the same order in which they will
be required by the decoder"), and a native photo uploader POSTing one file
at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.netsim.fluid import Flow, FluidNetwork
from repro.netsim.path import NetworkPath
from repro.util.validate import check_positive


@dataclass(frozen=True)
class TransferLogEntry:
    """Timing record for one completed transfer."""

    label: str
    size_bytes: float
    started_at: float
    completed_at: float

    @property
    def duration(self) -> float:
        """Wall-clock transfer time including request overhead."""
        return self.completed_at - self.started_at


class SequentialHttpClient:
    """Issues transfers one at a time over a single path."""

    def __init__(self, network: FluidNetwork, path: NetworkPath) -> None:
        self.network = network
        self.path = path
        self.log: List[TransferLogEntry] = []

    def submit(
        self,
        items: Sequence[Tuple[str, float]],
        on_item_complete: Optional[Callable[[TransferLogEntry], None]] = None,
        on_all_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Queue ``items`` (``(label, size_bytes)`` pairs) for transfer.

        Transfers run back to back: each begins with the path's request
        overhead (the first also pays for a fresh TCP connection and, on a
        3G path, the radio acquisition), then moves its payload. Use
        :meth:`run` (or step the network yourself) to execute.
        """
        if not items:
            raise ValueError("need at least one item")
        for label, size in items:
            check_positive(f"size of {label!r}", size)
        queue = list(items)

        def start_next(first: bool) -> None:
            label, size = queue.pop(0)
            issued_at = self.network.time
            delay = self.path.start_delay(issued_at, fresh_connection=first)

            def complete(flow: Flow, now: float) -> None:
                entry = TransferLogEntry(
                    label=label,
                    size_bytes=size,
                    started_at=issued_at,
                    completed_at=now,
                )
                self.log.append(entry)
                self.path.record_usage(flow.transferred_bytes)
                if on_item_complete is not None:
                    on_item_complete(entry)
                if queue:
                    start_next(False)
                elif on_all_complete is not None:
                    on_all_complete(now)

            flow = Flow(
                size,
                self.path.links,
                rate_cap_bps=self.path.flow_rate_cap_bps,
                on_complete=complete,
                label=f"{self.path.name}:{label}",
            )
            self.network.add_flow(flow, delay=delay)

        start_next(True)

    def run(
        self, items: Sequence[Tuple[str, float]], until: float = float("inf")
    ) -> float:
        """Submit ``items`` and run the network until they complete.

        Returns the total transaction time (completion minus submit time).
        """
        started = self.network.time
        finished: List[float] = []
        self.submit(items, on_all_complete=finished.append)
        self.network.run(until=until)
        if not finished:
            raise RuntimeError(
                f"transfers did not complete by t={self.network.time:.1f}s "
                f"(path {self.path.name!r} may be dead)"
            )
        return finished[0] - started
