"""HTTP request/response objects.

These are deliberately minimal: the simulator only needs methods, URLs,
payload sizes and a handful of headers (Content-Length, Range, Content-Type
for multipart uploads). The loopback prototype (:mod:`repro.proto`) speaks
real wire-format HTTP instead; this module is the in-simulator counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.util.validate import check_non_negative

_METHODS = frozenset({"GET", "POST", "PUT", "HEAD", "DELETE"})


class Headers:
    """Case-insensitive HTTP header map with stable insertion order."""

    def __init__(self, items: Optional[Dict[str, str]] = None) -> None:
        self._items: Dict[str, Tuple[str, str]] = {}
        if items:
            for name, value in items.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set (replace) a header.

        Names must be token-ish (no whitespace, colon or controls) and
        values must carry no control characters except HTAB — a CR/LF
        smuggled into a value would otherwise be rendered as an extra
        header line on the wire (header injection).
        """
        if not name or any(c in name for c in " \r\n:") or any(
            ord(c) < 0x20 or ord(c) == 0x7F for c in name
        ):
            raise ValueError(f"invalid header name {name!r}")
        text = str(value)
        if any((ord(c) < 0x20 and c != "\t") or ord(c) == 0x7F for c in text):
            raise ValueError(
                f"control character in value of header {name!r}: {text!r}"
            )
        self._items[name.lower()] = (name, text)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Get a header value, case-insensitively."""
        entry = self._items.get(name.lower())
        return entry[1] if entry else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        # Compare case-insensitively: only the values matter, not the
        # original spelling of the names.
        mine = {key: value for key, (_, value) in self._items.items()}
        theirs = {key: value for key, (_, value) in other._items.items()}
        return mine == theirs

    def __repr__(self) -> str:
        return f"Headers({dict(iter(self))!r})"


@dataclass
class HttpRequest:
    """One HTTP request.

    ``body_bytes`` is the upload payload volume (zero for GETs); the
    response volume lives on the matching :class:`HttpResponse`.
    """

    method: str
    url: str
    headers: Headers = field(default_factory=Headers)
    body_bytes: float = 0.0

    def __post_init__(self) -> None:
        method = self.method.upper()
        if method not in _METHODS:
            raise ValueError(f"unsupported HTTP method {self.method!r}")
        self.method = method
        if not self.url:
            raise ValueError("url must be non-empty")
        check_non_negative("body_bytes", self.body_bytes)

    @property
    def is_upload(self) -> bool:
        """True when the payload travels client -> server."""
        return self.body_bytes > 0.0

    @property
    def path(self) -> str:
        """URL path component (everything after host, before query)."""
        rest = self.url
        if "://" in rest:
            rest = rest.split("://", 1)[1]
            rest = "/" + rest.split("/", 1)[1] if "/" in rest else "/"
        return rest.split("?", 1)[0]


@dataclass
class HttpResponse:
    """One HTTP response: a status code and a payload volume."""

    status: int
    body_bytes: float = 0.0
    headers: Headers = field(default_factory=Headers)
    body: Optional[str] = None

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise ValueError(f"invalid HTTP status {self.status}")
        check_non_negative("body_bytes", self.body_bytes)
        # Zero is the dataclass default, an exact sentinel meaning
        # "derive the volume from the body" — not float arithmetic.
        if self.body is not None and self.body_bytes == 0.0:  # repro-lint: disable=RL005
            self.body_bytes = float(len(self.body.encode("utf-8")))

    @property
    def ok(self) -> bool:
        """True for a 2xx status."""
        return 200 <= self.status < 300
