"""Multipart photo-upload modelling.

The paper's uplink application mirrors Facebook/Flickr/Picasa native
clients (§4.1): each photo is sent in its own multipart HTTP POST, and the
stock clients upload sequentially, one file at a time — exactly the
behaviour 3GOL parallelises across paths. §5.2 uploads a set of 30 photos
with mean size 2.5 MB and standard deviation 0.74 MB (fitted from 200
iPhone 4S/5 photos).
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.proto.errors import MultipartError
from repro.web.messages import Headers, HttpRequest
from repro.util.validate import check_positive

#: Per-part framing overhead of a multipart/form-data body: boundary lines,
#: Content-Disposition and Content-Type headers. A real browser emits
#: roughly 150-250 bytes per part; we use a fixed representative value.
MULTIPART_PART_OVERHEAD_BYTES = 200.0


@dataclass(frozen=True)
class Photo:
    """One photo to upload."""

    name: str
    size_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("photo name must be non-empty")
        check_positive("size_bytes", self.size_bytes)


@dataclass(frozen=True)
class MultipartUpload:
    """A photo wrapped in a multipart/form-data POST."""

    photo: Photo
    boundary: str = "----3golBoundary"

    @property
    def body_bytes(self) -> float:
        """Total POST body size: payload plus multipart framing."""
        return self.photo.size_bytes + MULTIPART_PART_OVERHEAD_BYTES

    def to_request(self, upload_url: str = "/upload") -> HttpRequest:
        """Materialise the POST request."""
        headers = Headers(
            {
                "Content-Type": f"multipart/form-data; boundary={self.boundary}",
                "Content-Length": str(int(self.body_bytes)),
            }
        )
        return HttpRequest(
            method="POST",
            url=f"{upload_url}?name={self.photo.name}",
            headers=headers,
            body_bytes=self.body_bytes,
        )


def photo_upload_requests(
    photos: Sequence[Photo], upload_url: str = "/upload"
) -> List[HttpRequest]:
    """Build one multipart POST per photo (the native-client behaviour)."""
    if not photos:
        raise ValueError("need at least one photo")
    return [
        MultipartUpload(photo).to_request(upload_url) for photo in photos
    ]


# ---------------------------------------------------------------------------
# multipart/form-data wire format (subset)
# ---------------------------------------------------------------------------

DEFAULT_BOUNDARY = "----3golBoundary"

#: RFC 2046 §5.1.1 bchars, minus space (we never quote boundaries).
_BOUNDARY_CHARS = frozenset(
    string.ascii_letters + string.digits + "'()+_,-./:=?"
)
#: Characters allowed in ``name=`` / ``filename=`` tokens.
_TOKEN_CHARS = frozenset(
    string.ascii_letters + string.digits + "!#$%&'*+-._~"
)
#: Bound on parts in one body (a photo upload carries exactly one; the
#: decoder is shared, so keep a generous-but-finite ceiling).
MAX_MULTIPART_PARTS = 1_024
#: Bound on one part's header section.
MAX_PART_HEAD_BYTES = 8 * 1024


def _check_boundary(boundary: str) -> None:
    if not 1 <= len(boundary) <= 70:
        raise MultipartError(
            f"boundary must be 1-70 characters, got {len(boundary)}"
        )
    if not set(boundary) <= _BOUNDARY_CHARS:
        raise MultipartError(f"boundary {boundary!r} has invalid characters")


def _check_token(label: str, token: str) -> None:
    if not token or not set(token) <= _TOKEN_CHARS:
        raise MultipartError(f"invalid {label} {token!r}")


@dataclass(frozen=True)
class MultipartPart:
    """One decoded (or to-be-encoded) part of a multipart/form-data body."""

    name: str
    filename: str
    content_type: str
    payload: bytes


def encode_multipart(
    parts: Sequence[MultipartPart], boundary: str = DEFAULT_BOUNDARY
) -> bytes:
    """Serialise ``parts`` as a multipart/form-data body.

    The framing matches what stock photo-upload clients emit: one
    ``--boundary`` dash-line per part, Content-Disposition and
    Content-Type part headers, a closing ``--boundary--`` line. Raises
    :class:`~repro.proto.errors.MultipartError` when a payload contains
    the delimiter (multipart cannot escape it) or a token is invalid, so
    every successfully encoded body decodes back to the same parts.
    """
    _check_boundary(boundary)
    if not parts:
        raise MultipartError("need at least one part")
    if len(parts) > MAX_MULTIPART_PARTS:
        raise MultipartError(f"more than {MAX_MULTIPART_PARTS} parts")
    delimiter = b"\r\n--" + boundary.encode("ascii")
    out = bytearray()
    for part in parts:
        _check_token("part name", part.name)
        _check_token("filename", part.filename)
        if not part.content_type or not part.content_type.isascii():
            raise MultipartError(
                f"invalid content type {part.content_type!r}"
            )
        if delimiter in b"\r\n" + part.payload:
            raise MultipartError(
                f"payload of part {part.name!r} contains the boundary "
                "delimiter"
            )
        out += b"--" + boundary.encode("ascii") + b"\r\n"
        out += (
            f'Content-Disposition: form-data; name="{part.name}"; '
            f'filename="{part.filename}"\r\n'
            f"Content-Type: {part.content_type}\r\n\r\n"
        ).encode("ascii")
        out += part.payload + b"\r\n"
    out += b"--" + boundary.encode("ascii") + b"--\r\n"
    return bytes(out)


def _parse_part_head(head: bytes) -> Tuple[str, str, str]:
    """Extract (name, filename, content_type) from one part's headers."""
    if len(head) > MAX_PART_HEAD_BYTES:
        raise MultipartError(
            f"part header section exceeds {MAX_PART_HEAD_BYTES} bytes"
        )
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise MultipartError(f"part headers are not ASCII: {exc}") from None
    disposition = ""
    content_type = "application/octet-stream"
    for line in text.split("\r\n"):
        if not line:
            continue
        if ":" not in line:
            raise MultipartError(f"malformed part header line {line!r}")
        header_name, _, value = line.partition(":")
        key = header_name.strip().lower()
        if key == "content-disposition":
            disposition = value.strip()
        elif key == "content-type":
            content_type = value.strip()
    if not disposition.startswith("form-data"):
        raise MultipartError(
            f"part disposition {disposition!r} is not form-data"
        )
    params = {}
    for attribute in disposition.split(";")[1:]:
        attribute = attribute.strip()
        if "=" not in attribute:
            raise MultipartError(
                f"malformed disposition attribute {attribute!r}"
            )
        attr_name, _, attr_value = attribute.partition("=")
        if (
            len(attr_value) < 2
            or not attr_value.startswith('"')
            or not attr_value.endswith('"')
        ):
            raise MultipartError(
                f"disposition attribute {attr_name!r} is not quoted"
            )
        params[attr_name.strip().lower()] = attr_value[1:-1]
    name = params.get("name", "")
    filename = params.get("filename", "")
    _check_token("part name", name)
    _check_token("filename", filename)
    return name, filename, content_type


def decode_multipart(
    body: bytes, boundary: str = DEFAULT_BOUNDARY
) -> Tuple[MultipartPart, ...]:
    """Parse a multipart/form-data body back into its parts.

    Strict inverse of :func:`encode_multipart`: no preamble, CRLF
    framing, a terminating ``--boundary--`` line. Any structural
    deviation raises :class:`~repro.proto.errors.MultipartError`, never
    a bare builtin exception — this is the parse path the fuzzer
    hammers.
    """
    _check_boundary(boundary)
    dashed = b"--" + boundary.encode("ascii")
    opener = dashed + b"\r\n"
    if not body.startswith(opener):
        raise MultipartError("body does not open with the boundary line")
    chunks = (b"\r\n" + body[len(opener):]).split(b"\r\n" + dashed)
    # chunks[:-1] are "\r\n<head>\r\n\r\n<payload>" part bodies;
    # chunks[-1] is the terminator's tail and must be "--" (+ CRLF).
    tail = chunks[-1]
    if tail not in (b"--", b"--\r\n"):
        raise MultipartError("body does not end with the closing boundary")
    parts: List[MultipartPart] = []
    for chunk in chunks[:-1]:
        if not chunk.startswith(b"\r\n"):
            raise MultipartError("boundary line not followed by CRLF")
        if len(parts) >= MAX_MULTIPART_PARTS:
            raise MultipartError(
                f"more than {MAX_MULTIPART_PARTS} parts"
            )
        segment = chunk[2:]
        head, separator, payload = segment.partition(b"\r\n\r\n")
        if not separator:
            raise MultipartError(
                "part has no blank line between headers and payload"
            )
        name, filename, content_type = _parse_part_head(head)
        parts.append(
            MultipartPart(
                name=name,
                filename=filename,
                content_type=content_type,
                payload=payload,
            )
        )
    if not parts:
        raise MultipartError("body contains no parts")
    return tuple(parts)


def encode_photo_upload(
    photo: Photo, payload: bytes, boundary: str = DEFAULT_BOUNDARY
) -> bytes:
    """Wire body for one photo POST (the loopback prototype's framing)."""
    if len(payload) != int(photo.size_bytes):
        raise MultipartError(
            f"payload is {len(payload)} bytes but photo {photo.name!r} "
            f"declares {int(photo.size_bytes)}"
        )
    return encode_multipart(
        [
            MultipartPart(
                name="photo",
                filename=photo.name,
                content_type="image/jpeg",
                payload=payload,
            )
        ],
        boundary=boundary,
    )
