"""Multipart photo-upload modelling.

The paper's uplink application mirrors Facebook/Flickr/Picasa native
clients (§4.1): each photo is sent in its own multipart HTTP POST, and the
stock clients upload sequentially, one file at a time — exactly the
behaviour 3GOL parallelises across paths. §5.2 uploads a set of 30 photos
with mean size 2.5 MB and standard deviation 0.74 MB (fitted from 200
iPhone 4S/5 photos).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.web.messages import Headers, HttpRequest
from repro.util.validate import check_positive

#: Per-part framing overhead of a multipart/form-data body: boundary lines,
#: Content-Disposition and Content-Type headers. A real browser emits
#: roughly 150-250 bytes per part; we use a fixed representative value.
MULTIPART_PART_OVERHEAD_BYTES = 200.0


@dataclass(frozen=True)
class Photo:
    """One photo to upload."""

    name: str
    size_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("photo name must be non-empty")
        check_positive("size_bytes", self.size_bytes)


@dataclass(frozen=True)
class MultipartUpload:
    """A photo wrapped in a multipart/form-data POST."""

    photo: Photo
    boundary: str = "----3golBoundary"

    @property
    def body_bytes(self) -> float:
        """Total POST body size: payload plus multipart framing."""
        return self.photo.size_bytes + MULTIPART_PART_OVERHEAD_BYTES

    def to_request(self, upload_url: str = "/upload") -> HttpRequest:
        """Materialise the POST request."""
        headers = Headers(
            {
                "Content-Type": f"multipart/form-data; boundary={self.boundary}",
                "Content-Length": str(int(self.body_bytes)),
            }
        )
        return HttpRequest(
            method="POST",
            url=f"{upload_url}?name={self.photo.name}",
            headers=headers,
            body_bytes=self.body_bytes,
        )


def photo_upload_requests(
    photos: Sequence[Photo], upload_url: str = "/upload"
) -> List[HttpRequest]:
    """Build one multipart POST per photo (the native-client behaviour)."""
    if not photos:
        raise ValueError("need at least one photo")
    return [
        MultipartUpload(photo).to_request(upload_url) for photo in photos
    ]
