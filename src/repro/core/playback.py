"""Playout-phase modelling.

§4.1.1 leaves covering the playout phase as future work ("We could modify
the scheduler to cover also the playout phase"); this module provides the
pieces that extension needs: given the per-segment completion times a
scheduler produced, :class:`PlayoutSimulator` replays the player's clock
and reports the user-visible quality metrics — startup delay, number of
rebuffering stalls and total stall time.

Player model: playout starts once the pre-buffer is full; segment ``i``
must be fully present when the playhead reaches its start; otherwise the
player stalls until the segment arrives (a rebuffering event).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.scheduler.runner import TransactionResult
from repro.web.hls import HlsPlaylist


@dataclass(frozen=True)
class StallEvent:
    """One rebuffering pause."""

    segment_index: int
    started_at: float
    duration: float


@dataclass(frozen=True)
class PlayoutReport:
    """What the viewer experienced."""

    startup_delay: float
    stalls: Tuple[StallEvent, ...]
    playout_end: float

    @property
    def stall_count(self) -> int:
        """Number of rebuffering events."""
        return len(self.stalls)

    @property
    def total_stall_time(self) -> float:
        """Seconds spent rebuffering after playout started."""
        return sum(stall.duration for stall in self.stalls)

    @property
    def smooth(self) -> bool:
        """True when the video played without a single stall."""
        return not self.stalls


class PlayoutSimulator:
    """Replays the player clock over segment completion times."""

    def __init__(
        self, playlist: HlsPlaylist, prebuffer_fraction: float = 0.2
    ) -> None:
        if not 0.0 < prebuffer_fraction <= 1.0:
            raise ValueError(
                f"prebuffer_fraction must be in (0, 1], got {prebuffer_fraction}"
            )
        self.playlist = playlist
        self.prebuffer_fraction = prebuffer_fraction

    def replay(self, completion_times: Dict[str, float]) -> PlayoutReport:
        """Compute the playout experience.

        ``completion_times`` maps segment URI to the (absolute) time its
        download finished; times are relative to whatever epoch the caller
        used — the report is in the same units.
        """
        segments = self.playlist.segments
        missing = [s.uri for s in segments if s.uri not in completion_times]
        if missing:
            raise KeyError(f"no completion time for segments {missing[:3]}")
        prebuffer = self.playlist.segments_for_prebuffer(
            self.prebuffer_fraction
        )
        startup = max(completion_times[s.uri] for s in prebuffer)
        playhead = startup
        stalls: List[StallEvent] = []
        for segment in segments:
            ready_at = completion_times[segment.uri]
            if ready_at > playhead:
                stalls.append(
                    StallEvent(
                        segment_index=segment.index,
                        started_at=playhead,
                        duration=ready_at - playhead,
                    )
                )
                playhead = ready_at
            playhead += segment.duration_s
        return PlayoutReport(
            startup_delay=startup,
            stalls=tuple(stalls),
            playout_end=playhead,
        )


def completion_times_from_result(
    result: TransactionResult, epoch: Optional[float] = None
) -> Dict[str, float]:
    """Extract segment completion times from a TransactionResult.

    Times are re-based to the transaction start (or ``epoch``) so the
    playout report reads as "seconds after the user pressed play".
    """
    base = result.started_at if epoch is None else epoch
    return {
        label: record.completed_at - base
        for label, record in result.records.items()
    }
