"""The mobile component (§2.4, §4.1).

This is the software running on each phone: an HTTP proxy that "pipes
incoming connections through the 3G network", plus the advertisement
policy deciding whether the phone offers itself on the LAN:

* **network-integrated** mode: advertise only while holding a valid permit
  from the operator's 3GOL backend (§2.4);
* **multi-provider** mode: advertise only while today's cap quota
  A(t) = 3GOLa(t) − U(t) is positive (§6) — no input from the network.

The proxying itself is represented by the device's link chain (the
:class:`~repro.netsim.path.NetworkPath` built from it); this class owns
the *policy* state machine around it.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.captracker import CapTracker
from repro.core.discovery import DEFAULT_TTL, DiscoveryRegistry
from repro.core.permits import PermitServer
from repro.netsim.cellular import CellularDevice


class OperatingMode(enum.Enum):
    """Who authorises onloading."""

    NETWORK_INTEGRATED = "network-integrated"
    MULTI_PROVIDER = "multi-provider"


class MobileComponent:
    """Advertisement + metering logic on one phone."""

    def __init__(
        self,
        device: CellularDevice,
        registry: DiscoveryRegistry,
        mode: OperatingMode = OperatingMode.MULTI_PROVIDER,
        cap_tracker: Optional[CapTracker] = None,
        permit_server: Optional[PermitServer] = None,
        proxy_port: int = 8080,
        advertisement_ttl: float = DEFAULT_TTL,
    ) -> None:
        if mode is OperatingMode.MULTI_PROVIDER and cap_tracker is None:
            raise ValueError("multi-provider mode requires a CapTracker")
        if mode is OperatingMode.NETWORK_INTEGRATED and permit_server is None:
            raise ValueError(
                "network-integrated mode requires a PermitServer"
            )
        self.device = device
        self.registry = registry
        self.mode = mode
        self.cap_tracker = cap_tracker
        self.permit_server = permit_server
        self.proxy_port = proxy_port
        self.advertisement_ttl = advertisement_ttl
        self._advertised = False

    # ------------------------------------------------------------------
    # Authorisation
    # ------------------------------------------------------------------
    def is_authorized(self, now: float) -> bool:
        """May this phone onload right now, under its operating mode?"""
        if self.mode is OperatingMode.MULTI_PROVIDER:
            assert self.cap_tracker is not None
            return self.cap_tracker.may_advertise(now)
        assert self.permit_server is not None
        permit = self.permit_server.request_permit(
            self.device.name, self.device.sector.name, now
        )
        return permit is not None

    def refresh(self, now: float) -> bool:
        """Re-evaluate authorisation and sync the LAN advertisement.

        Called periodically (and before each transaction) — the mDNS
        refresh cycle. Returns the resulting advertisement state.
        """
        if self.is_authorized(now):
            self.registry.announce(
                self.device.name,
                now,
                port=self.proxy_port,
                ttl=self.advertisement_ttl,
            )
            self._advertised = True
        else:
            if self._advertised:
                self.registry.withdraw(self.device.name)
            self._advertised = False
        return self._advertised

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    def record_transfer(self, nbytes: float, now: float) -> None:
        """Meter 3GOL bytes this phone carried; may withdraw the ad."""
        if self.cap_tracker is not None:
            self.cap_tracker.record_usage(nbytes, now)
            if not self.cap_tracker.may_advertise(now) and self._advertised:
                self.registry.withdraw(self.device.name)
                self._advertised = False

    @property
    def is_advertised(self) -> bool:
        """Whether the phone currently advertises its proxy."""
        return self._advertised
