"""HTTP uploader client component (§4.1).

"The HTTP uploader uses the scheduler to perform parallel multi-part POST
requests to upload a set of selected pictures on a web server." Each photo
travels as one multipart POST (the native Facebook/Flickr/Picasa client
behaviour), parallelised across the uplink paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.items import Direction, Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.core.scheduler.runner import RetryPolicy, TransactionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.resilience import TransferGuard
from repro.netsim.fluid import FluidNetwork
from repro.netsim.path import NetworkPath
from repro.obs.capture import Instrumentation
from repro.web.upload import MultipartUpload, Photo


@dataclass
class UploadReport:
    """Outcome of one onloaded photo-set upload."""

    photo_count: int
    payload_bytes: float
    total_time: float
    result: TransactionResult


def photos_to_items(photos: Sequence[Photo]) -> List[TransferItem]:
    """Convert photos into transaction items (multipart framing included)."""
    if not photos:
        raise ValueError("need at least one photo")
    items = []
    for photo in photos:
        upload = MultipartUpload(photo)
        items.append(
            TransferItem(
                label=photo.name,
                size_bytes=upload.body_bytes,
                metadata={"photo_bytes": photo.size_bytes},
            )
        )
    return items


class MultipartUploader:
    """The client-side uploader: schedules POSTs over the uplink paths."""

    def __init__(self, network: FluidNetwork) -> None:
        self.network = network

    def upload(
        self,
        photos: Sequence[Photo],
        paths: Sequence[NetworkPath],
        policy_name: str = "GRD",
        guard: Optional["TransferGuard"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        stall_timeout_s: Optional[float] = None,
        obs: Optional[Instrumentation] = None,
    ) -> UploadReport:
        """Upload ``photos`` across ``paths``; returns timing report.

        ``guard`` (a :class:`~repro.core.resilience.TransferGuard`) makes
        the upload react mid-flight to permit revocations and cap
        exhaustion, degrading to the surviving paths. ``obs`` overrides
        the runner's instrumentation handle (default: the active
        capture, if any).
        """
        items = photos_to_items(photos)
        transaction = Transaction(
            items, direction=Direction.UPLOAD, name="photo-upload"
        )
        runner = TransactionRunner(
            self.network,
            list(paths),
            make_policy(policy_name),
            retry_policy=retry_policy,
            stall_timeout_s=stall_timeout_s,
            obs=obs,
        )
        if guard is not None:
            guard.attach(runner, paths)
        result = runner.run(transaction)
        if guard is not None:
            guard.finalize(result)
        return UploadReport(
            photo_count=len(photos),
            payload_bytes=sum(photo.size_bytes for photo in photos),
            total_time=result.total_time,
            result=result,
        )
