"""The 3GOL session facade.

Ties the whole system together the way the deployed prototype does: a
household's client component discovers the admissible phones Φ on the LAN,
builds the multipath set (gateway + Φ), runs transactions through the
HLS-aware proxy or the multipart uploader, and meters the cellular bytes
into each phone's cap tracker afterwards.

This is the main entry point for library users::

    session = OnloadSession.for_location(EVALUATION_LOCATIONS[0], n_phones=2)
    origin = session.host_bipbop()
    report = session.download_video("bipbop", "Q4", prebuffer_fraction=0.2)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.captracker import CapTracker
from repro.core.discovery import DiscoveryRegistry
from repro.core.items import Direction
from repro.core.mobile import MobileComponent, OperatingMode
from repro.core.permits import PermitServer
from repro.core.proxy import HlsAwareProxy, VideoDownloadReport
from repro.core.resilience import TransferGuard
from repro.core.scheduler.runner import TransactionResult
from repro.core.uploader import MultipartUploader, UploadReport
from repro.netsim.cellular import CellularDevice
from repro.netsim.path import NetworkPath
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.units import megabytes
from repro.web.client import SequentialHttpClient
from repro.web.hls import VideoAsset, make_bipbop_video
from repro.web.origin import OriginServer
from repro.web.upload import Photo

#: The §6 working value: 20 MB per device per day, the average leftover
#: capacity observed in the MNO dataset.
DEFAULT_DAILY_BUDGET_BYTES = megabytes(20.0)


class OnloadSession:
    """One household running 3GOL."""

    def __init__(
        self,
        household: Household,
        mode: OperatingMode = OperatingMode.MULTI_PROVIDER,
        daily_budget_bytes: float = DEFAULT_DAILY_BUDGET_BYTES,
        permit_server: Optional[PermitServer] = None,
    ) -> None:
        self.household = household
        self.network = household.network
        self.registry = DiscoveryRegistry()
        self.permit_server = permit_server
        self.origin = OriginServer(
            down_bps=household.config.origin_down_bps,
            up_bps=household.config.origin_up_bps,
        )
        # The origin's NIC links are the ones the household already wired
        # into its paths; reuse them so the capacity constraint is shared.
        self.origin.downlink = household.origin_down
        self.origin.uplink = household.origin_up

        self.mobile_components: Dict[str, MobileComponent] = {}
        for phone in household.phones:
            tracker = (
                CapTracker(daily_budget_bytes)
                if mode is OperatingMode.MULTI_PROVIDER
                else None
            )
            component = MobileComponent(
                device=phone,
                registry=self.registry,
                mode=mode,
                cap_tracker=tracker,
                permit_server=permit_server,
            )
            component.refresh(self.network.time)
            self.mobile_components[phone.name] = component

    @classmethod
    def for_location(
        cls,
        location: LocationProfile,
        n_phones: int = 2,
        seed: int = 0,
        mode: OperatingMode = OperatingMode.MULTI_PROVIDER,
        daily_budget_bytes: float = DEFAULT_DAILY_BUDGET_BYTES,
        permit_server: Optional[PermitServer] = None,
        config: Optional[HouseholdConfig] = None,
    ) -> "OnloadSession":
        """Build a session for one of the location presets."""
        if config is None:
            config = HouseholdConfig(n_phones=n_phones, seed=seed)
        household = Household(location, config)
        return cls(
            household,
            mode=mode,
            daily_budget_bytes=daily_budget_bytes,
            permit_server=permit_server,
        )

    # ------------------------------------------------------------------
    # Discovery / path building
    # ------------------------------------------------------------------
    def admissible_phones(self) -> List[CellularDevice]:
        """Φ(t): phones currently advertising on the LAN."""
        now = self.network.time
        for component in self.mobile_components.values():
            component.refresh(now)
        # Explicit sweep: Φ shrinks even for phones whose component went
        # silent (left the house) and will never refresh again.
        self.registry.expire(now)
        advertised = {
            record.device_name for record in self.registry.browse(now)
        }
        return [
            phone
            for phone in self.household.phones
            if phone.name in advertised
        ]

    def paths_for(
        self, direction: Direction, max_phones: Optional[int] = None
    ) -> List[NetworkPath]:
        """Multipath set: the gateway path plus the admissible phones'."""
        phones = self.admissible_phones()
        if max_phones is not None:
            phones = phones[:max_phones]
        if direction is Direction.DOWNLOAD:
            return [self.household.adsl_down_path()] + [
                self.household.phone_down_path(p) for p in phones
            ]
        return [self.household.adsl_up_path()] + [
            self.household.phone_up_path(p) for p in phones
        ]

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def host_bipbop(self, duration_s: float = 200.0) -> VideoAsset:
        """Host the paper's test video on the origin; returns the asset."""
        video = make_bipbop_video(duration_s=duration_s)
        self.origin.host_video(video)
        return video

    def host_video(self, video: VideoAsset) -> None:
        """Host an arbitrary video asset on the origin."""
        self.origin.host_video(video)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _meter_cellular(
        self, result: TransactionResult, paths: Sequence[NetworkPath]
    ) -> None:
        now = self.network.time
        for path in paths:
            if not path.is_cellular:
                continue
            nbytes = result.path_bytes.get(path.name, 0.0)
            component = self.mobile_components.get(path.device.name)
            if component is not None and nbytes > 0.0:
                component.record_transfer(nbytes, now)

    def _make_guard(self) -> TransferGuard:
        """Guard for one transfer: live revocation + incremental metering."""
        return TransferGuard(
            self.mobile_components,
            permit_server=self.permit_server,
            network=self.network,
        )

    def download_video(
        self,
        video_name: str,
        quality: str,
        policy_name: str = "GRD",
        prebuffer_fraction: Optional[float] = 0.2,
        max_phones: Optional[int] = None,
        use_3gol: bool = True,
    ) -> VideoDownloadReport:
        """Download one rendition, with or without 3GOL assistance."""
        playlist = self.origin.video(video_name).playlist(quality)
        wired = self.household.adsl_down_path()
        guard: Optional[TransferGuard] = None
        if use_3gol:
            paths = self.paths_for(Direction.DOWNLOAD, max_phones=max_phones)
            guard = self._make_guard()
        else:
            paths = [wired]
        proxy = HlsAwareProxy(self.network, self.origin, wired)
        report = proxy.download(
            playlist.playlist_uri,
            paths,
            policy_name=policy_name,
            prebuffer_fraction=prebuffer_fraction,
            quality_label=quality,
            guard=guard,
        )
        if guard is None:
            self._meter_cellular(report.result, paths)
        return report

    def upload_photos(
        self,
        photos: Sequence[Photo],
        policy_name: str = "GRD",
        max_phones: Optional[int] = None,
        use_3gol: bool = True,
    ) -> UploadReport:
        """Upload a photo set, with or without 3GOL assistance."""
        guard: Optional[TransferGuard] = None
        if use_3gol:
            paths = self.paths_for(Direction.UPLOAD, max_phones=max_phones)
            guard = self._make_guard()
        else:
            paths = [self.household.adsl_up_path()]
        uploader = MultipartUploader(self.network)
        report = uploader.upload(
            photos, paths, policy_name=policy_name, guard=guard
        )
        if guard is None:
            self._meter_cellular(report.result, paths)
        return report

    def baseline_download_time(self, video_name: str, quality: str) -> float:
        """ADSL-alone total download time for one rendition (no proxy)."""
        playlist = self.origin.video(video_name).playlist(quality)
        client = SequentialHttpClient(
            self.network, self.household.adsl_down_path()
        )
        items = [(s.uri, s.size_bytes) for s in playlist.segments]
        return client.run(items)
