"""Transaction execution on the fluid simulator.

:class:`TransactionRunner` is the machinery shared by all three scheduling
policies: it keeps one transfer in flight per path (HTTP, no pipelining),
asks the policy for work whenever a path goes idle, executes transfers as
fluid flows, aborts losing duplicate copies when an item completes, and
accounts bytes per path — including the duplication *waste* whose bound
(N−1)·S_max the paper derives for the greedy scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler.base import PathWorker, SchedulingPolicy
from repro.netsim.fluid import Flow, FluidNetwork
from repro.netsim.path import NetworkPath


@dataclass
class ItemRecord:
    """Timing record for one item of a completed transaction."""

    label: str
    size_bytes: float
    #: Path that delivered the winning copy.
    path_name: str
    #: Time the item was first handed to a path.
    scheduled_at: float
    #: Time the first copy completed.
    completed_at: float
    #: Number of copies ever started (1 = never duplicated).
    copies: int = 1

    @property
    def elapsed(self) -> float:
        """Seconds from first scheduling to completion."""
        return self.completed_at - self.scheduled_at


@dataclass
class TransactionResult:
    """Outcome of one transaction run."""

    transaction_name: str
    policy_name: str
    started_at: float
    finished_at: float
    records: Dict[str, ItemRecord]
    #: Bytes moved per path name (completed + partial duplicate progress).
    path_bytes: Dict[str, float]
    #: Bytes transferred by copies that did not win (duplication overhead).
    wasted_bytes: float
    #: Total payload bytes of the transaction.
    payload_bytes: float

    @property
    def total_time(self) -> float:
        """Wall-clock time of the whole transaction."""
        return self.finished_at - self.started_at

    @property
    def goodput_bps(self) -> float:
        """Payload bits delivered per second of transaction time."""
        if self.total_time <= 0.0:
            return math.inf
        return self.payload_bytes * 8.0 / self.total_time

    @property
    def overhead_fraction(self) -> float:
        """Wasted bytes as a fraction of payload bytes."""
        if self.payload_bytes <= 0.0:
            return 0.0
        return self.wasted_bytes / self.payload_bytes

    def time_to_complete(self, labels: Sequence[str]) -> float:
        """Seconds from transaction start until all ``labels`` completed.

        This is how pre-buffering time is measured: the player can start
        playout once the first k segments are all present (§5.2).
        """
        if not labels:
            raise ValueError("need at least one label")
        try:
            latest = max(self.records[label].completed_at for label in labels)
        except KeyError as exc:
            raise KeyError(f"no record for item {exc.args[0]!r}") from None
        return latest - self.started_at

    def cellular_bytes(self, paths: Sequence[NetworkPath]) -> float:
        """Bytes this transaction moved over the given paths' 3G devices."""
        return sum(
            self.path_bytes.get(path.name, 0.0)
            for path in paths
            if path.is_cellular
        )


class _CopyState:
    """Runner-internal: one in-flight copy of an item."""

    __slots__ = ("worker", "flow", "issued_at")

    def __init__(self, worker: PathWorker, flow: Flow, issued_at: float) -> None:
        self.worker = worker
        self.flow = flow
        self.issued_at = issued_at


class TransactionRunner:
    """Executes one transaction under one policy."""

    def __init__(
        self,
        network: FluidNetwork,
        paths: Sequence[NetworkPath],
        policy: SchedulingPolicy,
        on_item_complete: Optional[Callable[[ItemRecord], None]] = None,
    ) -> None:
        if not paths:
            raise ValueError("need at least one path")
        names = [path.name for path in paths]
        if len(set(names)) != len(names):
            raise ValueError("path names must be unique")
        self.network = network
        self.paths = list(paths)
        self.policy = policy
        self.on_item_complete = on_item_complete

        self._workers = [
            PathWorker(index=i, path=path) for i, path in enumerate(self.paths)
        ]
        self._copies: Dict[str, List[_CopyState]] = {}
        self._worker_flow: Dict[int, Flow] = {}
        self._scheduled_at: Dict[str, float] = {}
        self._completed: Dict[str, ItemRecord] = {}
        self._wasted = 0.0
        self._items_total = 0
        self._finished_at: Optional[float] = None
        self._transaction: Optional[Transaction] = None
        self._started_at = 0.0
        self._baseline_path_bytes: Dict[str, float] = {}
        #: Set while fail_path aborts a flow, so the abort handler knows
        #: not to treat it as a routine duplicate-loss.
        self._failing = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _refresh_worker_snapshots(self) -> None:
        for worker in self._workers:
            flow = self._worker_flow.get(worker.index)
            worker.remaining_bytes = flow.remaining_bytes if flow else 0.0

    def _dispatch(self, worker: PathWorker) -> None:
        if (
            self._finished_at is not None
            or worker.current_item is not None
            or worker.disabled
        ):
            return
        self._refresh_worker_snapshots()
        assignment = self.policy.next_item(worker, self.network.time)
        if assignment is None:
            return
        item = assignment.item
        if item.label in self._completed:
            # Defensive: a policy must never hand out a completed item
            # (the runner clears worker state before re-dispatching), so
            # treat it as a policy bug rather than looping.
            raise RuntimeError(
                f"policy {self.policy.name} assigned completed item "
                f"{item.label!r}"
            )
        now = self.network.time
        if item.label not in self._scheduled_at:
            self._scheduled_at[item.label] = now
        delay = worker.path.start_delay(
            now, fresh_connection=not worker.used_before
        )
        worker.used_before = True
        worker.current_item = item

        def complete(flow: Flow, when: float) -> None:
            self._on_copy_complete(worker, item, flow, when)

        def aborted(flow: Flow, when: float) -> None:
            self._on_copy_aborted(worker, item, flow, when)

        flow = Flow(
            item.size_bytes,
            worker.path.links,
            rate_cap_bps=worker.path.flow_rate_cap_bps,
            on_complete=complete,
            on_abort=aborted,
            label=f"{worker.path.name}:{item.label}",
        )
        self._worker_flow[worker.index] = flow
        self._copies.setdefault(item.label, []).append(
            _CopyState(worker=worker, flow=flow, issued_at=now)
        )
        self.network.add_flow(flow, delay=delay)

    def _release_worker(self, worker: PathWorker, flow: Flow) -> None:
        worker.current_item = None
        worker.remaining_bytes = 0.0
        if self._worker_flow.get(worker.index) is flow:
            del self._worker_flow[worker.index]

    def _on_copy_complete(
        self, worker: PathWorker, item: TransferItem, flow: Flow, now: float
    ) -> None:
        worker.path.record_usage(flow.transferred_bytes)
        worker.path.notify_activity(now)
        copies = self._copies.get(item.label, [])
        self._release_worker(worker, flow)
        duration = now - next(
            c.issued_at for c in copies if c.flow is flow
        )
        if item.label in self._completed:
            # A sibling copy won in this same simulation step; everything
            # this copy moved is overhead.
            self._wasted += flow.transferred_bytes
            self.policy.on_item_complete(worker, item, duration, now)
            self._dispatch(worker)
            return
        record = ItemRecord(
            label=item.label,
            size_bytes=item.size_bytes,
            path_name=worker.path.name,
            scheduled_at=self._scheduled_at[item.label],
            completed_at=now,
            copies=len(copies),
        )
        self._completed[item.label] = record
        worker.completed_bytes += flow.transferred_bytes
        self.policy.on_item_complete(worker, item, duration, now)
        if self.on_item_complete is not None:
            self.on_item_complete(record)
        # Abort ALL losing copies first — their workers must be fully
        # released before anyone re-dispatches, or a policy could see (and
        # try to duplicate) a stale in-flight copy of the finished item.
        for copy in list(copies):
            if copy.flow is not flow and not copy.flow.is_done:
                self.network.abort_flow(copy.flow)
        if len(self._completed) == self._items_total:
            self._finished_at = now
            return
        for idle in self._workers:
            if idle.current_item is None:
                self._dispatch(idle)
                if self._finished_at is not None:
                    return

    def _on_copy_aborted(
        self, worker: PathWorker, item: TransferItem, flow: Flow, now: float
    ) -> None:
        # Dispatching happens in _on_copy_complete once every losing copy
        # is settled; here we only account and release.
        worker.path.record_usage(flow.transferred_bytes)
        worker.path.notify_activity(now)
        self._wasted += flow.transferred_bytes
        self._release_worker(worker, flow)
        if self._failing == (worker.index, flow):
            # fail_path drives recovery itself (on_item_failed + redispatch).
            return
        self.policy.on_item_aborted(worker, item, now)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def start(self, transaction: Transaction) -> None:
        """Begin executing ``transaction`` without driving the network.

        Use this to run several transactions concurrently on one shared
        :class:`~repro.netsim.fluid.FluidNetwork` (e.g. a neighbourhood of
        households): start each runner, then step the network until every
        runner's :attr:`finished` is true, then :meth:`collect_result`.
        """
        if self._items_total:
            raise RuntimeError("TransactionRunner instances are single-use")
        self._items_total = len(transaction)
        self._transaction = transaction
        self._started_at = self.network.time
        self._baseline_path_bytes = {
            path.name: path.bytes_used for path in self.paths
        }
        self.policy.initialize(self._workers, transaction.items)
        for worker in self._workers:
            self._dispatch(worker)
            if self._finished_at is not None:
                break

    def fail_path(self, path_name: str) -> None:
        """A path died mid-transaction (phone left the LAN, radio lost).

        The worker is disabled, its in-flight copy aborted, and the
        policy's :meth:`~repro.core.scheduler.base.SchedulingPolicy.\
on_item_failed` hook re-queues the stranded item; every idle surviving
        worker is then re-dispatched so recovery starts immediately.
        """
        worker = next(
            (w for w in self._workers if w.path.name == path_name), None
        )
        if worker is None:
            raise KeyError(f"no path named {path_name!r}")
        if worker.disabled:
            return
        worker.disabled = True
        flow = self._worker_flow.get(worker.index)
        item = worker.current_item
        if flow is not None and not flow.is_done:
            self._failing = (worker.index, flow)
            try:
                self.network.abort_flow(flow)
            finally:
                self._failing = None
        if item is not None and item.label not in self._completed:
            # Only re-offer when no sibling copy is still in flight —
            # otherwise the endgame machinery already covers the item.
            live_copies = [
                c
                for c in self._copies.get(item.label, [])
                if not c.flow.is_done
            ]
            if not live_copies:
                self.policy.on_item_failed(worker, item, self.network.time)
        worker.current_item = None
        for idle in self._workers:
            if idle.current_item is None and not idle.disabled:
                self._dispatch(idle)
                if self._finished_at is not None:
                    return

    @property
    def finished(self) -> bool:
        """True once every item of the started transaction completed."""
        return self._finished_at is not None

    def collect_result(self) -> TransactionResult:
        """Build the result of a finished transaction."""
        if not self._items_total:
            raise RuntimeError("no transaction was started")
        if self._finished_at is None:
            missing = sorted(
                item.label
                for item in self._transaction.items
                if item.label not in self._completed
            )
            raise RuntimeError(
                f"transaction {self._transaction.name!r} incomplete at "
                f"t={self.network.time:.1f}s under {self.policy.name}: "
                f"{len(missing)} items missing ({missing[:5]}...)"
            )
        path_bytes = {
            path.name: path.bytes_used - self._baseline_path_bytes[path.name]
            for path in self.paths
        }
        return TransactionResult(
            transaction_name=self._transaction.name,
            policy_name=self.policy.name,
            started_at=self._started_at,
            finished_at=self._finished_at,
            records=dict(self._completed),
            path_bytes=path_bytes,
            wasted_bytes=self._wasted,
            payload_bytes=self._transaction.total_bytes,
        )

    def run(
        self, transaction: Transaction, until: float = math.inf
    ) -> TransactionResult:
        """Execute ``transaction``; returns its result.

        Raises :class:`RuntimeError` if the transaction cannot finish by
        ``until`` (e.g. a static policy committed items to a dead path).
        """
        self.start(transaction)
        while self._finished_at is None:
            if not self.network.step(max_time=until):
                break
            if self.network.time >= until:
                break
        return self.collect_result()
