"""Transaction execution on the fluid simulator.

:class:`TransactionRunner` is the machinery shared by all scheduling
policies: it keeps one transfer in flight per path (HTTP, no pipelining),
asks the policy for work whenever a path goes idle, executes transfers as
fluid flows, aborts losing duplicate copies when an item completes, and
accounts bytes per path — including the duplication *waste* whose bound
(N−1)·S_max the paper derives for the greedy scheduler.

On top of the happy path the runner implements the churn-tolerance layer:

* **dynamic path membership** — :meth:`TransactionRunner.remove_path`
  takes a path out (flap, Wi-Fi departure, permit revocation) and
  :meth:`TransactionRunner.add_path` brings it back or adds a brand-new
  path mid-transaction;
* **bounded retries with exponential backoff** — an item orphaned by a
  fault is re-offered to the policy after a :class:`RetryPolicy` backoff
  that grows with the item's fault count;
* **a per-flow stall watchdog** — a copy that moves no bytes for
  ``stall_timeout_s`` seconds is aborted and its item reassigned;
* **structured degradation logging** — every fault, drain, stall and
  recovery is recorded as a :class:`DegradationEvent` on the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.core.items import Transaction, TransferItem
from repro.core.scheduler.base import PathWorker, SchedulingPolicy
from repro.netsim.fluid import Flow, FluidNetwork
from repro.netsim.path import NetworkPath
from repro.obs.capture import Instrumentation, current as obs_current
from repro.util.units import transfer_rate


@dataclass
class ItemRecord:
    """Timing record for one item of a completed transaction."""

    label: str
    size_bytes: float
    #: Path that delivered the winning copy.
    path_name: str
    #: Time the item was first handed to a path.
    scheduled_at: float
    #: Time the first copy completed.
    completed_at: float
    #: Number of copies ever started (1 = never duplicated).
    copies: int = 1

    @property
    def elapsed(self) -> float:
        """Seconds from first scheduling to completion."""
        return self.completed_at - self.scheduled_at


@dataclass(frozen=True)
class DegradationEvent:
    """One structured entry in a transfer's degradation log.

    ``kind`` is a small vocabulary shared across the stack:
    ``path-fault`` (flap/death), ``path-drain`` (graceful removal),
    ``path-rejoin`` / ``path-join`` (membership growth),
    ``rejoin-vetoed`` (a re-join refused by the runner's
    :attr:`~TransactionRunner.rejoin_gate`), ``stall`` (watchdog
    abort), ``retry-budget-exhausted``, ``permit-revoked`` and
    ``cap-exhausted`` (session-layer reactions).
    """

    time: float
    kind: str
    path_name: str = ""
    item_label: str = ""
    detail: str = ""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry budget with exponential backoff.

    An item's fault count increments every time a fault or stall orphans
    it with no sibling copy in flight. The ``k``-th recovery is delayed
    by ``backoff_base_s * backoff_multiplier**(k-1)`` capped at
    ``backoff_max_s``. Past ``max_attempts`` the item is *still*
    re-queued — the runner never loses items — but without backoff and
    with a ``retry-budget-exhausted`` event in the degradation log, so
    callers can see the path churn outran the budget.
    """

    max_attempts: int = 6
    backoff_base_s: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_max_s < 0.0:
            raise ValueError("backoff_max_s must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before recovery attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if attempt > self.max_attempts or self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return min(delay, self.backoff_max_s)


#: Retry behaviour of the original one-shot ``fail_path`` era: immediate
#: re-dispatch, effectively unbounded budget. Kept for callers that need
#: bit-compatible timings with pre-churn code.
IMMEDIATE_RETRY = RetryPolicy(
    max_attempts=1_000_000, backoff_base_s=0.0
)


@dataclass
class TransactionResult:
    """Outcome of one transaction run."""

    transaction_name: str
    policy_name: str
    started_at: float
    finished_at: float
    records: Dict[str, ItemRecord]
    #: Bytes moved per path name (completed + partial duplicate progress).
    path_bytes: Dict[str, float]
    #: Bytes transferred by copies that did not win (duplication overhead).
    wasted_bytes: float
    #: Total payload bytes of the transaction.
    payload_bytes: float
    #: Structured log of faults, drains, stalls and recoveries.
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Wall-clock time of the whole transaction."""
        return self.finished_at - self.started_at

    @property
    def goodput_bps(self) -> float:
        """Payload bits delivered per second of transaction time."""
        if self.total_time <= 0.0:
            return math.inf
        return transfer_rate(self.payload_bytes, self.total_time)

    @property
    def overhead_fraction(self) -> float:
        """Wasted bytes as a fraction of payload bytes."""
        if self.payload_bytes <= 0.0:
            return 0.0
        return self.wasted_bytes / self.payload_bytes

    def degradations_of_kind(self, kind: str) -> List[DegradationEvent]:
        """The degradation entries of one kind, in time order."""
        return [event for event in self.degradations if event.kind == kind]

    def time_to_complete(self, labels: Sequence[str]) -> float:
        """Seconds from transaction start until all ``labels`` completed.

        This is how pre-buffering time is measured: the player can start
        playout once the first k segments are all present (§5.2).
        """
        if not labels:
            raise ValueError("need at least one label")
        try:
            latest = max(self.records[label].completed_at for label in labels)
        except KeyError as exc:
            raise KeyError(f"no record for item {exc.args[0]!r}") from None
        return latest - self.started_at

    def cellular_bytes(self, paths: Sequence[NetworkPath]) -> float:
        """Bytes this transaction moved over the given paths' 3G devices."""
        return sum(
            self.path_bytes.get(path.name, 0.0)
            for path in paths
            if path.is_cellular
        )


class _CopyState:
    """Runner-internal: one in-flight copy of an item."""

    __slots__ = ("worker", "flow", "issued_at")

    def __init__(self, worker: PathWorker, flow: Flow, issued_at: float) -> None:
        self.worker = worker
        self.flow = flow
        self.issued_at = issued_at


class TransactionRunner:
    """Executes one transaction under one policy."""

    def __init__(
        self,
        network: FluidNetwork,
        paths: Sequence[NetworkPath],
        policy: SchedulingPolicy,
        on_item_complete: Optional[Callable[[ItemRecord], None]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        stall_timeout_s: Optional[float] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if not paths:
            raise ValueError("need at least one path")
        names = [path.name for path in paths]
        if len(set(names)) != len(names):
            raise ValueError("path names must be unique")
        if stall_timeout_s is not None and stall_timeout_s <= 0.0:
            raise ValueError(
                f"stall_timeout_s must be positive, got {stall_timeout_s}"
            )
        self.network = network
        self.paths = list(paths)
        self.policy = policy
        self.on_item_complete = on_item_complete
        self.retry_policy = retry_policy or RetryPolicy()
        self.stall_timeout_s = stall_timeout_s
        #: Instrumentation handle; ``None`` (no active capture) keeps
        #: every checkpoint on the one-attribute-test fast path.
        self.obs = obs if obs is not None else obs_current()
        self.policy.bind_obs(self.obs)
        #: Structured log of every fault/drain/stall/recovery.
        self.degradations: List[DegradationEvent] = []
        #: Session-layer veto over path re-joins. When set, a re-join of
        #: a removed path (``add_path`` with a name) only proceeds if the
        #: gate returns ``True`` for ``(path, now)``. A vetoed re-join
        #: records a ``rejoin-vetoed`` degradation and leaves the worker
        #: out of the set — this is how :class:`TransferGuard` keeps a
        #: fault schedule's ``up`` transition from silently re-enabling
        #: a path whose cap ran dry or whose permit was revoked.
        self.rejoin_gate: Optional[Callable[[NetworkPath, float], bool]] = (
            None
        )

        self._workers = [
            PathWorker(index=i, path=path) for i, path in enumerate(self.paths)
        ]
        self._copies: Dict[str, List[_CopyState]] = {}
        self._worker_flow: Dict[int, Flow] = {}
        self._scheduled_at: Dict[str, float] = {}
        self._completed: Dict[str, ItemRecord] = {}
        self._wasted = 0.0
        self._items_total = 0
        self._finished_at: Optional[float] = None
        self._transaction: Optional[Transaction] = None
        self._started_at = 0.0
        self._baseline_path_bytes: Dict[str, float] = {}
        #: Flows the runner is aborting on purpose (fault, drain, stall):
        #: their abort handlers must not treat the abort as a routine
        #: duplicate-loss. A *set* so concurrent faults in one engine
        #: tick (or re-entrant aborts from inside abort callbacks) each
        #: keep their own marker — the recovery path is re-entrant.
        self._fault_aborting: Set[int] = set()
        #: Items with a backoff-delayed recovery already scheduled, so two
        #: faults in the same tick cannot double-schedule a re-dispatch.
        self._requeue_pending: Set[str] = set()
        #: Fault count per item label (drives the retry backoff).
        self._fault_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _worker_by_name(self, path_name: str) -> PathWorker:
        for worker in self._workers:
            if worker.path.name == path_name:
                return worker
        raise KeyError(f"no path named {path_name!r}")

    def _record(self, event: DegradationEvent) -> None:
        self.degradations.append(event)
        if self.obs is not None:
            self.obs.event(
                "degradation",
                time=event.time,
                kind=event.kind,
                path=event.path_name,
                item=event.item_label,
            )
            self.obs.count("runner.degradations", kind=event.kind)

    def _refresh_worker_snapshots(self) -> None:
        for worker in self._workers:
            flow = self._worker_flow.get(worker.index)
            worker.remaining_bytes = flow.remaining_bytes if flow else 0.0

    def _dispatch(self, worker: PathWorker) -> None:
        if (
            self._finished_at is not None
            or worker.current_item is not None
            or not worker.available
        ):
            return
        self._refresh_worker_snapshots()
        assignment = self.policy.next_item(worker, self.network.time)
        if assignment is None:
            return
        item = assignment.item
        if item.label in self._completed:
            # Defensive: a policy must never hand out a completed item
            # (the runner clears worker state before re-dispatching), so
            # treat it as a policy bug rather than looping.
            raise RuntimeError(
                f"policy {self.policy.name} assigned completed item "
                f"{item.label!r}"
            )
        now = self.network.time
        if item.label not in self._scheduled_at:
            self._scheduled_at[item.label] = now
        delay = worker.path.start_delay(
            now, fresh_connection=not worker.used_before
        )
        worker.used_before = True
        worker.current_item = item

        def complete(flow: Flow, when: float) -> None:
            self._on_copy_complete(worker, item, flow, when)

        def aborted(flow: Flow, when: float) -> None:
            self._on_copy_aborted(worker, item, flow, when)

        flow = Flow(
            item.size_bytes,
            worker.path.links,
            rate_cap_bps=worker.path.flow_rate_cap_bps,
            on_complete=complete,
            on_abort=aborted,
            label=f"{worker.path.name}:{item.label}",
        )
        self._worker_flow[worker.index] = flow
        self._copies.setdefault(item.label, []).append(
            _CopyState(worker=worker, flow=flow, issued_at=now)
        )
        if self.obs is not None:
            self.obs.event(
                "copy.start",
                time=now,
                path=worker.path.name,
                item=item.label,
                size_bytes=item.size_bytes,
                duplicate=assignment.duplicate,
            )
            self.obs.count("runner.copies", path=worker.path.name)
        self.network.add_flow(flow, delay=delay)
        if self.stall_timeout_s is not None:
            self._arm_watchdog(worker, item, flow, flow.remaining_bytes)

    def _dispatch_idle(self) -> None:
        for worker in self._workers:
            if worker.current_item is None and worker.available:
                self._dispatch(worker)
                if self._finished_at is not None:
                    return

    def _release_worker(self, worker: PathWorker, flow: Flow) -> None:
        worker.current_item = None
        worker.remaining_bytes = 0.0
        if self._worker_flow.get(worker.index) is flow:
            del self._worker_flow[worker.index]
        if worker.draining:
            # The drained copy settled: the path now leaves the set. The
            # policy must hear about it — static policies (RR, MIN) keep
            # per-path queues, and without a membership notification the
            # drained worker's unstarted items would be stranded forever
            # (no copy failed, so ``on_item_failed`` never fires).
            worker.draining = False
            worker.disabled = True
            self.policy.on_membership_change(
                tuple(self._workers), self.network.time
            )
            self._dispatch_idle()

    def _on_copy_complete(
        self, worker: PathWorker, item: TransferItem, flow: Flow, now: float
    ) -> None:
        worker.path.record_usage(flow.transferred_bytes)
        worker.path.notify_activity(now)
        copies = self._copies.get(item.label, [])
        self._release_worker(worker, flow)
        duration = now - next(
            c.issued_at for c in copies if c.flow is flow
        )
        if item.label in self._completed:
            # A sibling copy won in this same simulation step; everything
            # this copy moved is overhead.
            self._wasted += flow.transferred_bytes
            if self.obs is not None:
                self.obs.event(
                    "copy.waste",
                    time=now,
                    path=worker.path.name,
                    item=item.label,
                    transferred_bytes=flow.transferred_bytes,
                    cause="duplicate",
                )
                self.obs.count(
                    "runner.waste_bytes",
                    amount=flow.transferred_bytes,
                    cause="duplicate",
                )
            self.policy.on_item_complete(worker, item, duration, now)
            self._dispatch(worker)
            return
        record = ItemRecord(
            label=item.label,
            size_bytes=item.size_bytes,
            path_name=worker.path.name,
            scheduled_at=self._scheduled_at[item.label],
            completed_at=now,
            copies=len(copies),
        )
        self._completed[item.label] = record
        worker.completed_bytes += flow.transferred_bytes
        if self.obs is not None:
            queue_s = record.scheduled_at - self._started_at
            self.obs.event(
                "item.complete",
                time=now,
                path=worker.path.name,
                item=item.label,
                copies=record.copies,
                elapsed_s=record.elapsed,
                queue_s=queue_s,
            )
            self.obs.count(
                "runner.items_completed", path=worker.path.name
            )
            self.obs.count(
                "runner.bytes_completed",
                amount=flow.transferred_bytes,
                path=worker.path.name,
            )
            self.obs.observe("runner.item_elapsed_s", record.elapsed)
            self.obs.observe("runner.item_queue_s", queue_s)
        self.policy.on_item_complete(worker, item, duration, now)
        if self.on_item_complete is not None:
            self.on_item_complete(record)
        # Abort ALL losing copies first — their workers must be fully
        # released before anyone re-dispatches, or a policy could see (and
        # try to duplicate) a stale in-flight copy of the finished item.
        for copy in list(copies):
            if copy.flow is not flow and not copy.flow.is_done:
                self.network.abort_flow(copy.flow)
        if len(self._completed) == self._items_total:
            self._finished_at = now
            if self.obs is not None and self._transaction is not None:
                self.obs.event(
                    "txn.end",
                    time=now,
                    transaction=self._transaction.name,
                    policy=self.policy.name,
                    wasted_bytes=self._wasted,
                    payload_bytes=self._transaction.total_bytes,
                )
            return
        self._dispatch_idle()

    def _on_copy_aborted(
        self, worker: PathWorker, item: TransferItem, flow: Flow, now: float
    ) -> None:
        # Dispatching happens in _on_copy_complete once every losing copy
        # is settled; here we only account and release.
        worker.path.record_usage(flow.transferred_bytes)
        worker.path.notify_activity(now)
        self._wasted += flow.transferred_bytes
        if self.obs is not None:
            cause = (
                "fault"
                if flow.flow_id in self._fault_aborting
                else "duplicate"
            )
            issued_at = next(
                (
                    c.issued_at
                    for c in self._copies.get(item.label, [])
                    if c.flow is flow
                ),
                now,
            )
            self.obs.event(
                "copy.abort",
                time=now,
                path=worker.path.name,
                item=item.label,
                transferred_bytes=flow.transferred_bytes,
                cause=cause,
            )
            self.obs.count(
                "runner.waste_bytes",
                amount=flow.transferred_bytes,
                cause=cause,
            )
            self.obs.observe("runner.copy_abort_age_s", now - issued_at)
        self._release_worker(worker, flow)
        if flow.flow_id in self._fault_aborting:
            # remove_path / the stall watchdog drives recovery itself
            # (delayed re-queue + re-dispatch).
            return
        self.policy.on_item_aborted(worker, item, now)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _abort_for_fault(self, flow: Flow) -> None:
        """Abort ``flow`` with the fault marker set (re-entrant safe)."""
        self._fault_aborting.add(flow.flow_id)
        try:
            self.network.abort_flow(flow)
        finally:
            self._fault_aborting.discard(flow.flow_id)

    def _recover_item(self, worker: PathWorker, item: TransferItem) -> None:
        """Re-offer ``item`` to the policy after a fault orphaned it.

        No-op when the transaction finished, the item completed, a
        sibling copy is still in flight, or a recovery is already
        scheduled — which makes the path re-entrant: any number of
        faults in the same engine tick schedule at most one re-dispatch.
        """
        if self._finished_at is not None or item.label in self._completed:
            return
        live_copies = [
            c
            for c in self._copies.get(item.label, [])
            if not c.flow.is_done
        ]
        if live_copies:
            # The endgame machinery already covers the item.
            return
        if item.label in self._requeue_pending:
            return
        now = self.network.time
        attempt = self._fault_counts.get(item.label, 0) + 1
        self._fault_counts[item.label] = attempt
        if attempt > self.retry_policy.max_attempts:
            self._record(
                DegradationEvent(
                    time=now,
                    kind="retry-budget-exhausted",
                    path_name=worker.path.name,
                    item_label=item.label,
                    detail=(
                        f"fault {attempt} exceeds budget of "
                        f"{self.retry_policy.max_attempts}; re-queueing "
                        "without backoff"
                    ),
                )
            )
        delay = self.retry_policy.backoff(attempt)
        if self.obs is not None:
            self.obs.event(
                "retry.scheduled",
                time=now,
                path=worker.path.name,
                item=item.label,
                attempt=attempt,
                delay_s=delay,
            )
            self.obs.count("runner.retries", policy=self.policy.name)

        def requeue() -> None:
            self._requeue_pending.discard(item.label)
            if (
                self._finished_at is not None
                or item.label in self._completed
            ):
                return
            self.policy.on_item_failed(worker, item, self.network.time)
            self._dispatch_idle()

        if delay > 0.0:
            self._requeue_pending.add(item.label)
            self.network.engine.schedule_in(
                delay, requeue, label=f"requeue:{item.label}"
            )
        else:
            requeue()

    def _arm_watchdog(
        self,
        worker: PathWorker,
        item: TransferItem,
        flow: Flow,
        last_remaining: float,
    ) -> None:
        timeout = self.stall_timeout_s
        assert timeout is not None

        def check() -> None:
            if flow.is_done or self._finished_at is not None:
                return
            if flow.remaining_bytes < last_remaining:
                # Progress since the last check: re-arm from here.
                self._arm_watchdog(worker, item, flow, flow.remaining_bytes)
                return
            self._record(
                DegradationEvent(
                    time=self.network.time,
                    kind="stall",
                    path_name=worker.path.name,
                    item_label=item.label,
                    detail=f"no progress for {timeout:g}s; reassigning",
                )
            )
            self._abort_for_fault(flow)
            self._recover_item(worker, item)
            self._dispatch_idle()

        # Scheduled directly on the engine. Deliberately NOT cancelled when
        # the flow settles early: a due (no-op) watchdog is still a step
        # boundary, and the golden traces pin the step sequence.
        self.network.engine.schedule_in(
            timeout, check, label=f"watchdog:{flow.label}"
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def start(self, transaction: Transaction) -> None:
        """Begin executing ``transaction`` without driving the network.

        Use this to run several transactions concurrently on one shared
        :class:`~repro.netsim.fluid.FluidNetwork` (e.g. a neighbourhood of
        households): start each runner, then step the network until every
        runner's :attr:`finished` is true, then :meth:`collect_result`.
        """
        if self._items_total:
            raise RuntimeError("TransactionRunner instances are single-use")
        self._items_total = len(transaction)
        self._transaction = transaction
        self._started_at = self.network.time
        self._baseline_path_bytes = {
            path.name: path.bytes_used for path in self.paths
        }
        if self.obs is not None:
            self.obs.event(
                "txn.begin",
                time=self._started_at,
                transaction=transaction.name,
                policy=self.policy.name,
                items=self._items_total,
                payload_bytes=transaction.total_bytes,
            )
            self.obs.count(
                "runner.transactions", policy=self.policy.name
            )
            self.obs.gauge(
                "runner.active_paths", float(len(self.active_path_names))
            )
        self.policy.initialize(self._workers, transaction.items)
        for worker in self._workers:
            self._dispatch(worker)
            if self._finished_at is not None:
                break

    # ------------------------------------------------------------------
    # Dynamic path membership
    # ------------------------------------------------------------------
    def remove_path(
        self,
        path_name: str,
        drain: bool = False,
        kind: str = "path-fault",
        detail: str = "",
    ) -> bool:
        """Take a path out of the transfer set (it may later re-join).

        ``drain=False`` (a fault: flap, Wi-Fi departure, radio loss)
        aborts the in-flight copy and re-offers the orphaned item to the
        policy after the retry backoff. ``drain=True`` (a graceful
        removal: permit drain, cap exhaustion) lets the current copy
        finish but dispatches no new work; the worker disables itself
        once idle. Returns ``True`` when the call changed the path's
        state, ``False`` when it was already out (idempotent).
        """
        worker = self._worker_by_name(path_name)
        if worker.disabled or (drain and worker.draining):
            return False
        now = self.network.time
        item = worker.current_item
        if drain and item is not None:
            worker.draining = True
            self._record(
                DegradationEvent(
                    time=now,
                    # A caller that didn't specialise the kind gets the
                    # vocabulary's graceful variant, not "path-fault".
                    kind="path-drain" if kind == "path-fault" else kind,
                    path_name=path_name,
                    item_label=item.label,
                    detail=detail or "draining: current copy may finish",
                )
            )
            if self.obs is not None:
                self.obs.gauge(
                    "runner.active_paths",
                    float(len(self.active_path_names)),
                )
            return True
        worker.draining = False
        worker.disabled = True
        self._record(
            DegradationEvent(
                time=now,
                kind=kind,
                path_name=path_name,
                item_label=item.label if item is not None else "",
                detail=detail,
            )
        )
        if self.obs is not None:
            self.obs.gauge(
                "runner.active_paths", float(len(self.active_path_names))
            )
        flow = self._worker_flow.get(worker.index)
        if flow is not None and not flow.is_done:
            self._abort_for_fault(flow)
        worker.current_item = None
        if item is not None:
            self._recover_item(worker, item)
        elif kind != "path-fault":
            # An idle worker left for a session-layer reason (cap dry,
            # permit revoked): no copy failed, so ``on_item_failed``
            # will never run to migrate whatever the policy still had
            # queued for it, and — unlike a physical fault — no later
            # re-join will re-deal it either. Tell the policy the set
            # shrank instead. A ``path-fault`` keeps the deferred-
            # recovery semantics: the queue waits out the outage and
            # re-deals on re-join.
            self.policy.on_membership_change(tuple(self._workers), now)
        self._dispatch_idle()
        return True

    def add_path(
        self, path: Union[str, NetworkPath], kind: str = "path-rejoin"
    ) -> PathWorker:
        """Bring a path (back) into the transfer set mid-transaction.

        Given a name, re-enables the matching removed worker (re-join
        after a flap) — unless the :attr:`rejoin_gate` vetoes it, in
        which case a ``rejoin-vetoed`` degradation is recorded and the
        still-removed worker is returned. Given a new
        :class:`NetworkPath`, appends a fresh worker — the multipath
        set can grow while a transaction runs
        (e.g. a phone arriving home). Idempotent for already-active
        paths. The policy learns of the change via
        :meth:`~repro.core.scheduler.base.SchedulingPolicy.\
on_membership_change` and the path starts pulling work immediately.
        """
        now = self.network.time
        if isinstance(path, str):
            worker = self._worker_by_name(path)
            if worker.available:
                return worker
            if self.rejoin_gate is not None and not self.rejoin_gate(
                worker.path, now
            ):
                # The session layer says the path has no authority to
                # carry traffic (cap dry, permit revoked): the physical
                # link coming back does not re-enable it.
                self._record(
                    DegradationEvent(
                        time=now,
                        kind="rejoin-vetoed",
                        path_name=worker.path.name,
                        detail="session layer vetoed re-join",
                    )
                )
                return worker
            worker.disabled = False
            worker.draining = False
            self._record(
                DegradationEvent(
                    time=now, kind=kind, path_name=worker.path.name
                )
            )
        else:
            existing = next(
                (w for w in self._workers if w.path.name == path.name), None
            )
            if existing is not None:
                return self.add_path(path.name, kind=kind)
            worker = PathWorker(index=len(self._workers), path=path)
            self._workers.append(worker)
            self.paths.append(path)
            if self._items_total:
                self._baseline_path_bytes[path.name] = path.bytes_used
            self._record(
                DegradationEvent(
                    time=now, kind="path-join", path_name=path.name
                )
            )
        if self.obs is not None:
            self.obs.gauge(
                "runner.active_paths", float(len(self.active_path_names))
            )
        self.policy.on_membership_change(tuple(self._workers), now)
        if self._items_total and self._finished_at is None:
            self._dispatch(worker)
        return worker

    def fail_path(self, path_name: str) -> None:
        """A path died mid-transaction (phone left the LAN, radio lost).

        The worker is disabled, its in-flight copy aborted, and the
        policy's :meth:`~repro.core.scheduler.base.SchedulingPolicy.\
on_item_failed` hook re-queues the stranded item after the retry
        backoff; every idle surviving worker is then re-dispatched so
        recovery starts as soon as the backoff elapses. The path may
        still re-join later via :meth:`add_path`.
        """
        self.remove_path(path_name, kind="path-fault", detail="path failed")

    @property
    def finished(self) -> bool:
        """True once every item of the started transaction completed."""
        return self._finished_at is not None

    @property
    def active_path_names(self) -> List[str]:
        """Names of the paths currently accepting work."""
        return [w.path.name for w in self._workers if w.available]

    def collect_result(self) -> TransactionResult:
        """Build the result of a finished transaction."""
        if not self._items_total or self._transaction is None:
            raise RuntimeError("no transaction was started")
        if self._finished_at is None:
            missing = sorted(
                item.label
                for item in self._transaction.items
                if item.label not in self._completed
            )
            raise RuntimeError(
                f"transaction {self._transaction.name!r} incomplete at "
                f"t={self.network.time:.1f}s under {self.policy.name}: "
                f"{len(missing)} items missing ({missing[:5]}...)"
            )
        path_bytes = {
            path.name: path.bytes_used - self._baseline_path_bytes[path.name]
            for path in self.paths
        }
        return TransactionResult(
            transaction_name=self._transaction.name,
            policy_name=self.policy.name,
            started_at=self._started_at,
            finished_at=self._finished_at,
            records=dict(self._completed),
            path_bytes=path_bytes,
            wasted_bytes=self._wasted,
            payload_bytes=self._transaction.total_bytes,
            degradations=list(self.degradations),
        )

    def run(
        self, transaction: Transaction, until: float = math.inf
    ) -> TransactionResult:
        """Execute ``transaction``; returns its result.

        Raises :class:`RuntimeError` if the transaction cannot finish by
        ``until`` (e.g. a static policy committed items to a dead path).
        """
        self.start(transaction)
        while self._finished_at is None:
            if not self.network.step(max_time=until):
                break
            if self.network.time >= until:
                break
        return self.collect_result()
