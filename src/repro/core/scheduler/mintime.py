"""Minimum-estimated-time scheduler (MIN), the second baseline of §5.1.

"The minimum time scheduler assigns the items to the path that minimizes
the estimated transfer time, computed by using the estimated available
bandwidth of each path. For the MIN scheduler we assign the first N items
in a round robin fashion to initialize and then estimate the bandwidth
using exponential smoothing filtering. We set the filter parameter to 0.75
to maintain a high level of agility."

The failure mode the paper reports — and this implementation reproduces —
is that cellular bandwidth varies too quickly for history to predict: "The
high variability of channel conditions results in poor estimates, leading
to suboptimal decisions. Changing filter and/or sampling criteria was not
helpful." Two effects compound:

* the bandwidth samples are application-level goodput, so the first sample
  of a 3G path absorbs the radio acquisition delay and the proxy RTTs and
  can underestimate the path several-fold;
* once items are committed to per-path queues they are never reassigned,
  so a queue built on a wrong estimate strands its items behind the
  mis-predicted path while other paths go idle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.items import TransferItem
from repro.core.scheduler.base import (
    PathWorker,
    SchedulingPolicy,
    WorkAssignment,
)
from repro.util.stats import ewma_update
from repro.util.units import mbps, transfer_rate, transfer_seconds
from repro.util.validate import check_positive

#: The paper's exponential-smoothing weight for new samples.
DEFAULT_SMOOTHING = 0.75
#: Bandwidth assumed for a path with no completed sample yet. A real
#: client has no way to observe link capacity directly, so this is a flat
#: prior (a typical residential rate), not a peek into the simulator.
DEFAULT_PRIOR_BPS = mbps(2.0)


class MinTimePolicy(SchedulingPolicy):
    """Assignment by estimated completion time with EWMA bandwidth estimates.

    The first N items bootstrap one sample per path (round-robin). The
    remaining M−N items are committed in one pass at the first scheduling
    decision after bootstrap — i.e. as soon as the first sample exists —
    each to the path minimising ``(backlog + item) / estimated_bw``.
    Committed items are never reassigned.
    """

    name = "MIN"

    def __init__(
        self,
        smoothing: float = DEFAULT_SMOOTHING,
        prior_bps: float = DEFAULT_PRIOR_BPS,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        check_positive("prior_bps", prior_bps)
        self.smoothing = smoothing
        self.prior_bps = float(prior_bps)
        self._workers: Sequence[PathWorker] = ()
        self._unassigned: List[TransferItem] = []
        self._queues: Dict[int, List[TransferItem]] = {}
        self._estimates: Dict[int, Optional[float]] = {}
        self._flushed = False

    def initialize(
        self, workers: Sequence[PathWorker], items: Sequence[TransferItem]
    ) -> None:
        """Adopt the workers; bootstrap one item per path, park the rest."""
        self._workers = tuple(workers)
        self._queues = {worker.index: [] for worker in workers}
        self._estimates = {worker.index: None for worker in workers}
        self._flushed = False
        items = list(items)
        # Bootstrap: first N items round-robin, one per path.
        for worker, item in zip(workers, items):
            self._queues[worker.index].append(item)
        self._unassigned = items[len(workers):]

    # ------------------------------------------------------------------
    # Bandwidth estimation
    # ------------------------------------------------------------------
    def estimated_bandwidth(self, worker: PathWorker) -> float:
        """Current estimate for a path, bits/second (prior until sampled)."""
        estimate = self._estimates.get(worker.index)
        if estimate is not None and estimate > 0.0:
            return estimate
        return self.prior_bps

    def on_item_complete(
        self,
        worker: PathWorker,
        item: TransferItem,
        duration: float,
        now: float,
    ) -> None:
        """Fold the completed transfer into the path's EWMA estimate."""
        if duration <= 0.0:
            return
        # Application-level goodput: the sample includes request overhead
        # and (on 3G) radio acquisition — exactly what a real client would
        # measure, and a key source of the estimator's trouble.
        sample = transfer_rate(item.size_bytes, duration)
        self._estimates[worker.index] = ewma_update(
            self._estimates.get(worker.index), sample, self.smoothing
        )
        self._count("scheduler.estimate_updates")

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _backlog_bytes(self, worker: PathWorker) -> float:
        queued = sum(
            item.size_bytes for item in self._queues.get(worker.index, ())
        )
        return queued + worker.remaining_bytes

    def _estimated_finish(
        self, worker: PathWorker, extra_bytes: float
    ) -> float:
        bandwidth = self.estimated_bandwidth(worker)
        return transfer_seconds(
            self._backlog_bytes(worker) + extra_bytes, bandwidth
        )

    def _flush(self) -> None:
        alive = [w for w in self._workers if w.available]
        if not alive:
            # Total blackout: keep the items unassigned; a later
            # next_item (after a path re-joins) flushes them.
            return
        while self._unassigned:
            item = self._unassigned.pop(0)
            best = min(
                alive,
                key=lambda worker: self._estimated_finish(
                    worker, item.size_bytes
                ),
            )
            self._queues[best.index].append(item)
            self._count("scheduler.committed_items")
        self._flushed = True

    def next_item(
        self, worker: PathWorker, now: float
    ) -> Optional[WorkAssignment]:
        """Next item from this path's makespan-balanced queue."""
        if not self._flushed and any(
            est is not None for est in self._estimates.values()
        ):
            self._flush()
        queue = self._queues[worker.index]
        if queue:
            return WorkAssignment(item=queue.pop(0), duplicate=False)
        if not self._flushed and self._unassigned:
            # Degenerate corner: a path drained its bootstrap item without
            # producing a sample (zero-duration transfer). Flush anyway so
            # work cannot be stranded forever.
            self._flush()
            if self._queues[worker.index]:
                return WorkAssignment(
                    item=self._queues[worker.index].pop(0), duplicate=False
                )
        return None

    def on_item_failed(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """Re-commit the failed item and the dead queue by estimate.

        During a total blackout (no path alive) the stranded items go
        back to the unassigned pool and are re-committed when a path
        re-joins — items are never lost.
        """
        stranded = [item] + self._queues.get(worker.index, [])
        self._queues[worker.index] = []
        self._count("scheduler.requeues", amount=float(len(stranded)))
        alive = [w for w in self._workers if w.available]
        if not alive:
            for moved in stranded:
                if moved not in self._unassigned:
                    self._unassigned.append(moved)
                    self._count("scheduler.orphaned_items")
            self._flushed = False
            return
        for moved in stranded:
            best = min(
                alive,
                key=lambda candidate: self._estimated_finish(
                    candidate, moved.size_bytes
                ),
            )
            queue = self._queues[best.index]
            if moved not in queue:
                queue.append(moved)

    def on_membership_change(
        self, workers: Sequence[PathWorker], now: float
    ) -> None:
        """Track the new set; migrate queues stranded on departed paths.

        "Committed items are never reassigned" holds only between
        membership changes: a path that leaves gracefully (cap drain)
        aborts no copy, so without this migration its committed queue
        would be stranded forever.
        """
        self._workers = tuple(workers)
        for worker in workers:
            self._queues.setdefault(worker.index, [])
            self._estimates.setdefault(worker.index, None)
        stranded: List[TransferItem] = []
        for worker in self._workers:
            if not worker.available and self._queues[worker.index]:
                stranded.extend(self._queues[worker.index])
                self._queues[worker.index] = []
        if not stranded:
            return
        self._count(
            "scheduler.requeues", amount=float(len(stranded))
        )
        alive = [w for w in self._workers if w.available]
        if not alive:
            for moved in stranded:
                if moved not in self._unassigned:
                    self._unassigned.append(moved)
                    self._count("scheduler.orphaned_items")
            self._flushed = False
            return
        for moved in stranded:
            best = min(
                alive,
                key=lambda candidate: self._estimated_finish(
                    candidate, moved.size_bytes
                ),
            )
            queue = self._queues[best.index]
            if moved not in queue:
                queue.append(moved)

    def queue_depth(self, worker_index: int) -> int:
        """Items committed to one path and not yet started."""
        return len(self._queues.get(worker_index, ()))
