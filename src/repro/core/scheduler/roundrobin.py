"""Round-robin scheduler (RR), the first baseline of §5.1.

"The round robin scheduler cyclically assigns one item to each path": item
``i`` goes to path ``i mod N`` at transaction start, and each path works
through its own queue sequentially. There is no work stealing and no
duplication, so the transaction ends when the *slowest* queue drains —
"the peak capacity of the ADSL link is generally very different from the
peak capacity of HSPA and hence round-robin cannot be expected to maximize
gains" (§4.1.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.items import TransferItem
from repro.core.scheduler.base import (
    PathWorker,
    SchedulingPolicy,
    WorkAssignment,
)


class RoundRobinPolicy(SchedulingPolicy):
    """Static cyclic assignment, one private queue per path."""

    name = "RR"

    def __init__(self) -> None:
        self._workers: Sequence[PathWorker] = ()
        self._queues: Dict[int, List[TransferItem]] = {}
        #: Items stranded while *no* path was alive (total blackout):
        #: any path asking for work drains these first.
        self._orphans: List[TransferItem] = []

    def initialize(
        self, workers: Sequence[PathWorker], items: Sequence[TransferItem]
    ) -> None:
        """Deal the items round-robin into per-path queues."""
        self._workers = tuple(workers)
        self._queues = {worker.index: [] for worker in workers}
        self._orphans = []
        n = len(workers)
        for i, item in enumerate(items):
            self._queues[workers[i % n].index].append(item)

    def next_item(
        self, worker: PathWorker, now: float
    ) -> Optional[WorkAssignment]:
        """Next item from this path's own queue (orphans rescued first)."""
        if self._orphans:
            return WorkAssignment(item=self._orphans.pop(0), duplicate=False)
        queue = self._queues.get(worker.index)
        if queue:
            return WorkAssignment(item=queue.pop(0), duplicate=False)
        return None

    def on_item_failed(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """Move the failed item (and the dead path's queue) elsewhere.

        RR has no work stealing, so recovery must migrate the whole
        queue: the failed item and everything still waiting behind the
        dead path go, round-robin, to the surviving paths. During a
        total blackout (no path alive) the stranded items wait in the
        orphan list until any path re-joins — items are never lost.
        """
        stranded = [item] + self._queues.get(worker.index, [])
        self._queues[worker.index] = []
        self._count("scheduler.requeues", amount=float(len(stranded)))
        alive = [w for w in self._workers if w.available]
        if not alive:
            for moved in stranded:
                if moved not in self._orphans:
                    self._orphans.append(moved)
                    self._count("scheduler.orphaned_items")
            return
        for i, moved in enumerate(stranded):
            target = alive[i % len(alive)]
            queue = self._queues[target.index]
            if moved not in queue:
                queue.append(moved)

    def on_membership_change(
        self, workers: Sequence[PathWorker], now: float
    ) -> None:
        """Re-deal the unstarted items cyclically over the live set.

        Called when a path joins or re-joins. RR stays static *between*
        membership changes, but a returning path must share the residual
        load or it would idle for the rest of the transaction (its queue
        migrated away when it failed).
        """
        self._workers = tuple(workers)
        for worker in workers:
            self._queues.setdefault(worker.index, [])
        alive = [w for w in self._workers if w.available]
        if not alive:
            return
        pending = self._orphans + [
            item
            for worker in self._workers
            for item in self._queues[worker.index]
        ]
        self._orphans = []
        for worker in self._workers:
            self._queues[worker.index] = []
        if pending:
            self._count(
                "scheduler.redealt_items", amount=float(len(pending))
            )
        for i, item in enumerate(pending):
            self._queues[alive[i % len(alive)].index].append(item)

    def queue_depth(self, worker_index: int) -> int:
        """Items still queued for one path (for tests and introspection)."""
        return len(self._queues.get(worker_index, ()))
