"""Deadline-aware scheduler (DLN) — the paper's future-work extension.

§4.1.1: "We could modify the scheduler to cover also the playout phase,
but given the wide amount of proposals in this area, we leave this
extension as future work." This policy is that extension, kept in the
spirit of the greedy scheduler:

* items carry playout deadlines (``metadata['deadline_s']``, seconds of
  playout time from the start — the proxy sets them from the segment
  durations);
* like GRD, unscheduled items go in order to the first idle path (order
  equals deadline order for HLS);
* unlike GRD, the endgame duplicates the in-flight item with the
  *earliest deadline* — the one about to stall the player — rather than
  the oldest-scheduled one, and duplication may start *before* all items
  are scheduled when an in-flight item's deadline is at risk (urgency
  pre-emption).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.items import TransferItem
from repro.core.scheduler.base import (
    PathWorker,
    SchedulingPolicy,
    WorkAssignment,
)

#: Metadata key carrying the playout deadline (seconds from playout start).
DEADLINE_KEY = "deadline_s"


def item_deadline(item: TransferItem) -> float:
    """Deadline of an item (+inf when it has none)."""
    value = item.metadata.get(DEADLINE_KEY)
    return float(value) if value is not None else math.inf


def attach_deadlines(items: Sequence[TransferItem]) -> List[TransferItem]:
    """Derive deadlines from HLS segment metadata, in place of the proxy.

    Segment ``i``'s deadline is the playout time at which it is needed:
    the sum of the durations of the segments before it.
    """
    clock = 0.0
    out: List[TransferItem] = []
    for item in items:
        item.metadata[DEADLINE_KEY] = clock
        clock += float(item.metadata.get("duration_s", 0.0))
        out.append(item)
    return out


class DeadlinePolicy(SchedulingPolicy):
    """Greedy scheduling with earliest-deadline-first duplication.

    ``urgency_margin`` (seconds) controls pre-emptive duplication: when an
    in-flight item's deadline is within the margin of the current playout
    clock estimate, an idle path duplicates it even though unscheduled
    items remain. The playout clock is approximated as ``now`` minus the
    transaction start minus ``startup_grace`` (the player's own startup
    delay: before playout begins nothing is truly urgent, so the grace
    keeps the policy from duplicating segment 0 the instant the
    transaction starts).
    """

    name = "DLN"

    def __init__(
        self, urgency_margin: float = 4.0, startup_grace: float = 10.0
    ) -> None:
        if urgency_margin < 0.0:
            raise ValueError(
                f"urgency_margin must be >= 0, got {urgency_margin}"
            )
        if startup_grace < 0.0:
            raise ValueError(
                f"startup_grace must be >= 0, got {startup_grace}"
            )
        self.urgency_margin = urgency_margin
        self.startup_grace = startup_grace
        self._workers: Sequence[PathWorker] = ()
        self._pending: List[TransferItem] = []
        self._started_at: Optional[float] = None

    def initialize(
        self, workers: Sequence[PathWorker], items: Sequence[TransferItem]
    ) -> None:
        """Adopt the worker set and queue the items in deadline order."""
        self._workers = tuple(workers)
        # Keep deadline order even if the caller shuffled the items.
        self._pending = sorted(items, key=item_deadline)
        self._started_at = None

    def _inflight_candidates(self, worker: PathWorker) -> List[TransferItem]:
        candidates: List[TransferItem] = []
        for other in self._workers:
            if other is worker:
                continue
            item = other.current_item
            if item is None or item is worker.current_item:
                continue
            candidates.append(item)
        return candidates

    def _most_urgent(self, worker: PathWorker) -> Optional[TransferItem]:
        candidates = self._inflight_candidates(worker)
        if not candidates:
            return None
        return min(candidates, key=item_deadline)

    def next_item(
        self, worker: PathWorker, now: float
    ) -> Optional[WorkAssignment]:
        """Earliest-deadline-first pick, with urgency pre-emption."""
        if self._started_at is None:
            self._started_at = now
        elapsed = now - self._started_at - self.startup_grace
        # Urgency pre-emption: rescue an item that is about to miss its
        # deadline even though unscheduled items remain.
        urgent = self._most_urgent(worker)
        if (
            urgent is not None
            and item_deadline(urgent) <= elapsed + self.urgency_margin
        ):
            self._count("scheduler.urgent_duplicates")
            return WorkAssignment(item=urgent, duplicate=True)
        if self._pending:
            return WorkAssignment(item=self._pending.pop(0), duplicate=False)
        if urgent is not None:
            self._count("scheduler.endgame_duplicates")
            return WorkAssignment(item=urgent, duplicate=True)
        return None

    def on_item_failed(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """Re-queue the failed item in deadline order."""
        if item not in self._pending:
            self._pending.append(item)
            self._pending.sort(key=item_deadline)
            self._count("scheduler.requeues")

    def on_membership_change(
        self, workers: Sequence[PathWorker], now: float
    ) -> None:
        """Track joined/re-joined paths for the urgency duplication scan."""
        self._workers = tuple(workers)

    @property
    def pending_count(self) -> int:
        """Items not yet handed to any path."""
        return len(self._pending)
