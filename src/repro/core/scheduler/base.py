"""Scheduler interfaces.

A :class:`SchedulingPolicy` decides *which item a path transfers next*;
the :class:`~repro.core.scheduler.runner.TransactionRunner` owns the
mechanics (flows, aborts, accounting). The split keeps each policy a small,
independently testable object and mirrors the paper's framing, where the
three compared schedulers differ only in their assignment rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.core.items import TransferItem
from repro.netsim.path import NetworkPath

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.capture import Instrumentation


@dataclass
class PathWorker:
    """Runner-side view of one path: identity plus live status.

    Policies may read (never write) these fields when deciding; the runner
    keeps them current.
    """

    index: int
    path: NetworkPath
    #: Item currently being transferred on this path, if any.
    current_item: Optional[TransferItem] = None
    #: Remaining bytes of the current transfer (runner-updated snapshot).
    remaining_bytes: float = 0.0
    #: Whether this path has issued at least one transfer (connection reuse).
    used_before: bool = False
    #: Bytes fully delivered over this path within the transaction.
    completed_bytes: float = 0.0
    #: Set when the path failed mid-transaction (phone left the Wi-Fi,
    #: radio lost): the runner stops dispatching to it. A removed path
    #: may later re-join (see ``TransactionRunner.add_path``).
    disabled: bool = False
    #: Set while the path drains: its in-flight copy may finish but no
    #: new work is dispatched; once idle the worker becomes disabled.
    draining: bool = False

    @property
    def is_idle(self) -> bool:
        """True when the path has no transfer in flight."""
        return self.current_item is None

    @property
    def available(self) -> bool:
        """True when the runner may dispatch new work to this path."""
        return not self.disabled and not self.draining


@dataclass(frozen=True)
class WorkAssignment:
    """A policy decision: transfer ``item`` next on the asking path.

    ``duplicate`` marks endgame re-transfers of an item already in flight
    elsewhere (the greedy scheduler's mechanism); the runner aborts the
    losing copies when the first one completes.
    """

    item: TransferItem
    duplicate: bool = False


class SchedulingPolicy:
    """Decides the next item for an idle path.

    Lifecycle: the runner calls :meth:`initialize` once with the workers
    and the transaction's items (in order), then :meth:`next_item`
    whenever a path goes idle, and :meth:`on_item_complete` /
    :meth:`on_item_aborted` as transfers finish. A policy instance is
    single-use: it belongs to one transaction run.
    """

    #: Paper abbreviation, set by subclasses (GRD / RR / MIN).
    name: str = "?"
    #: Instrumentation handle the runner binds before the run starts;
    #: ``None`` keeps every policy checkpoint a no-op.
    obs: Optional["Instrumentation"] = None

    def bind_obs(self, obs: Optional["Instrumentation"]) -> None:
        """Attach (or, with ``None``, detach) an instrumentation handle.

        The :class:`~repro.core.scheduler.runner.TransactionRunner`
        calls this from its constructor, so policies built by
        experiments pick up an active capture without plumbing.
        """
        self.obs = obs

    def _count(
        self, metric: str, amount: float = 1.0, **labels: Any
    ) -> None:
        """Increment a policy metric (labelled with :attr:`name`).

        The no-op fast path when nothing captures — one attribute test.
        """
        if self.obs is not None:
            self.obs.count(
                metric, amount=amount, policy=self.name, **labels
            )

    def initialize(
        self, workers: Sequence[PathWorker], items: Sequence[TransferItem]
    ) -> None:
        """Receive the paths and the ordered item list before the run."""
        raise NotImplementedError

    def next_item(
        self, worker: PathWorker, now: float
    ) -> Optional[WorkAssignment]:
        """Pick the next item for ``worker`` (``None``: stay idle)."""
        raise NotImplementedError

    def on_item_complete(
        self,
        worker: PathWorker,
        item: TransferItem,
        duration: float,
        now: float,
    ) -> None:
        """An item copy finished on ``worker`` after ``duration`` seconds."""

    def on_item_aborted(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """A duplicate copy on ``worker`` was aborted (item done elsewhere)."""

    def on_item_failed(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """``worker``'s path died with ``item`` in flight.

        The policy must make the item schedulable again (unless another
        copy is still in flight elsewhere — the runner calls this hook
        regardless, so idempotent re-queueing is the policy's job).
        The default raises: a policy that cannot recover must say so
        rather than silently lose items.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot recover from a path failure"
        )

    def on_membership_change(
        self, workers: Sequence[PathWorker], now: float
    ) -> None:
        """The worker set changed mid-transaction.

        Called when a path joins (or re-joins after a flap) so the
        policy can track the new worker and create whatever per-path
        state it keeps — and when a path *leaves* gracefully (drain on
        cap exhaustion, idle removal) so a policy with per-path queues
        can migrate the departed worker's unstarted items to the
        survivors; a graceful leave aborts no copy, so
        :meth:`on_item_failed` never fires for it. Must be idempotent:
        a re-join of an existing worker calls this too. The default
        ignores membership changes — policies with per-path state
        override it.
        """
