"""The 3GOL multipath scheduler (§2.4, §4.1.1, §5.1).

Three policies, matching the paper's comparison:

* :class:`~repro.core.scheduler.greedy.GreedyPolicy` (**GRD**) — the
  paper's contribution: work-conserving pull scheduling with endgame
  duplication of the oldest in-flight item;
* :class:`~repro.core.scheduler.roundrobin.RoundRobinPolicy` (**RR**) —
  cyclic static assignment;
* :class:`~repro.core.scheduler.mintime.MinTimePolicy` (**MIN**) —
  assignment by estimated transfer time with an EWMA bandwidth estimator
  (smoothing 0.75).

:class:`~repro.core.scheduler.runner.TransactionRunner` executes a
transaction under a policy on the fluid simulator and reports timings,
per-path byte usage and duplication waste — plus the churn-tolerance
layer: dynamic path membership, bounded retries with exponential
backoff (:class:`~repro.core.scheduler.runner.RetryPolicy`), a
per-flow stall watchdog, and structured
:class:`~repro.core.scheduler.runner.DegradationEvent` logging.
"""

from typing import Any, Dict, Type

from repro.core.scheduler.base import (
    PathWorker,
    SchedulingPolicy,
    WorkAssignment,
)
from repro.core.scheduler.deadline import DeadlinePolicy, attach_deadlines
from repro.core.scheduler.greedy import GreedyPolicy
from repro.core.scheduler.roundrobin import RoundRobinPolicy
from repro.core.scheduler.mintime import MinTimePolicy
from repro.core.scheduler.runner import (
    DegradationEvent,
    IMMEDIATE_RETRY,
    ItemRecord,
    RetryPolicy,
    TransactionResult,
    TransactionRunner,
)

POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    "GRD": GreedyPolicy,
    "RR": RoundRobinPolicy,
    "MIN": MinTimePolicy,
    # The paper's future-work extension (playout-phase coverage).
    "DLN": DeadlinePolicy,
}


def make_policy(name: str, **kwargs: Any) -> SchedulingPolicy:
    """Build a policy by its paper abbreviation (GRD, RR, MIN)."""
    try:
        cls = POLICIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; expected one of {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "PathWorker",
    "SchedulingPolicy",
    "WorkAssignment",
    "DeadlinePolicy",
    "attach_deadlines",
    "GreedyPolicy",
    "RoundRobinPolicy",
    "MinTimePolicy",
    "DegradationEvent",
    "IMMEDIATE_RETRY",
    "ItemRecord",
    "RetryPolicy",
    "TransactionResult",
    "TransactionRunner",
    "POLICIES",
    "make_policy",
]
