"""The paper's greedy scheduler (GRD), §4.1.1.

Quoting the paper: "First, an item is assigned to each path. Then, if
there are any remaining items (M ≥ N), they are scheduled by order, on the
first available path. […] when all items have been already scheduled and a
path becomes idle before the transaction is completed, we reassign the
oldest scheduled item among the ones being transferred by the other N−1
paths. We keep doing this until the transaction ends. […] when a
rescheduled item completes, all other ongoing transfers of that item are
aborted."

The policy is *pull-based*: it never pre-commits items to paths, so every
path is busy whenever work remains (work conservation) and no item can be
stranded behind a slow path — the two properties that make GRD beat RR and
MIN under variable per-path bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.items import TransferItem
from repro.core.scheduler.base import (
    PathWorker,
    SchedulingPolicy,
    WorkAssignment,
)


class GreedyPolicy(SchedulingPolicy):
    """Work-conserving greedy assignment with endgame duplication.

    ``enable_duplication=False`` turns off the endgame re-transfers — the
    ablation that quantifies how much of GRD's tail-latency win comes from
    duplication versus plain work conservation (see the
    ``ext_duplication`` benchmark).
    """

    name = "GRD"

    def __init__(self, enable_duplication: bool = True) -> None:
        self.enable_duplication = bool(enable_duplication)
        self._workers: Sequence[PathWorker] = ()
        self._pending: List[TransferItem] = []
        # Label -> sequence number of first scheduling; defines "oldest".
        self._schedule_order: Dict[str, int] = {}
        self._next_order = 0

    def initialize(
        self, workers: Sequence[PathWorker], items: Sequence[TransferItem]
    ) -> None:
        """Adopt the worker set and queue the items in arrival order."""
        self._workers = tuple(workers)
        self._pending = list(items)
        self._schedule_order = {}
        self._next_order = 0

    def next_item(
        self, worker: PathWorker, now: float
    ) -> Optional[WorkAssignment]:
        """Greedy pick: pending work first, endgame duplicates after."""
        # Phase 1: unscheduled items go, in order, to the first idle path.
        if self._pending:
            item = self._pending.pop(0)
            self._schedule_order[item.label] = self._next_order
            self._next_order += 1
            return WorkAssignment(item=item, duplicate=False)
        if not self.enable_duplication:
            return None
        # Phase 2 (endgame): duplicate the *oldest scheduled* item still in
        # flight on another path — by first scheduling time, i.e. the item
        # that has been in the system longest, the one most likely stuck
        # behind a slow path.
        candidates: List[TransferItem] = []
        for other in self._workers:
            if other is worker:
                continue
            item = other.current_item
            if item is None or item is worker.current_item:
                continue
            candidates.append(item)
        if not candidates:
            return None
        oldest = min(
            candidates, key=lambda item: self._schedule_order[item.label]
        )
        self._count("scheduler.endgame_duplicates")
        return WorkAssignment(item=oldest, duplicate=True)

    def on_item_failed(
        self, worker: PathWorker, item: TransferItem, now: float
    ) -> None:
        """Re-queue the failed item at the head (it is the most overdue)."""
        if item not in self._pending:
            self._pending.insert(0, item)
            self._count("scheduler.requeues")

    def on_membership_change(
        self, workers: Sequence[PathWorker], now: float
    ) -> None:
        """Track joined/re-joined paths for the endgame duplication scan."""
        self._workers = tuple(workers)

    @property
    def pending_count(self) -> int:
        """Items not yet handed to any path."""
        return len(self._pending)
