"""The 3GOL system — the paper's primary contribution.

Layout mirrors the architecture of Fig. 2:

* the multipath scheduler (:mod:`repro.core.scheduler`) with the paper's
  greedy policy and the RR / MIN baselines;
* the client components: :mod:`repro.core.proxy` (HLS-aware prefetching
  proxy) and :mod:`repro.core.uploader` (multipart POST uploader);
* the mobile component (:mod:`repro.core.mobile`) with its advertisement
  policy over :mod:`repro.core.discovery`;
* the authorisation machinery: :mod:`repro.core.permits`
  (network-integrated) and :mod:`repro.core.captracker` +
  :mod:`repro.core.allowance` (multi-provider, §6);
* :mod:`repro.core.session` — the facade wiring a household together.
"""

from repro.core.items import (
    Direction,
    Transaction,
    TransferItem,
    items_from_sizes,
)
from repro.core.scheduler import (
    DegradationEvent,
    GreedyPolicy,
    MinTimePolicy,
    RetryPolicy,
    RoundRobinPolicy,
    TransactionResult,
    TransactionRunner,
    make_policy,
)
from repro.core.allowance import (
    AllowanceDecision,
    AllowanceEstimator,
    EstimatorEvaluation,
    evaluate_estimator,
)
from repro.core.captracker import CapTracker
from repro.core.permits import Permit, PermitServer
from repro.core.discovery import DiscoveryRegistry, ServiceRecord
from repro.core.mobile import MobileComponent, OperatingMode
from repro.core.proxy import HlsAwareProxy, VideoDownloadReport
from repro.core.resilience import DegradationLog, TransferGuard, bind_fault_schedule
from repro.core.uploader import MultipartUploader, UploadReport
from repro.core.session import DEFAULT_DAILY_BUDGET_BYTES, OnloadSession

__all__ = [
    "Direction",
    "Transaction",
    "TransferItem",
    "items_from_sizes",
    "DegradationEvent",
    "GreedyPolicy",
    "MinTimePolicy",
    "RetryPolicy",
    "RoundRobinPolicy",
    "TransactionResult",
    "TransactionRunner",
    "make_policy",
    "AllowanceDecision",
    "AllowanceEstimator",
    "EstimatorEvaluation",
    "evaluate_estimator",
    "CapTracker",
    "Permit",
    "PermitServer",
    "DiscoveryRegistry",
    "ServiceRecord",
    "MobileComponent",
    "OperatingMode",
    "HlsAwareProxy",
    "VideoDownloadReport",
    "DegradationLog",
    "TransferGuard",
    "bind_fault_schedule",
    "MultipartUploader",
    "UploadReport",
    "DEFAULT_DAILY_BUDGET_BYTES",
    "OnloadSession",
]
