"""Transfer items and transactions.

§2.4 of the paper defines the scheduler's job: "we have N available paths
[…] and M items to download/upload, from/to a given server. We refer to the
action of downloading/uploading the set of M items a *transaction*. The
scheduler goal is to transfer the full set of M items as fast as possible."
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.util.units import bytes_to_megabytes
from repro.util.validate import check_positive


class Direction(enum.Enum):
    """Which way a transaction moves data."""

    DOWNLOAD = "download"
    UPLOAD = "upload"


@dataclass(frozen=True)
class TransferItem:
    """One item of a transaction: a video segment, a photo, a generic file.

    ``metadata`` carries application context (e.g. the HLS segment index
    the item corresponds to) without the scheduler having to know about
    applications.
    """

    label: str
    size_bytes: float
    metadata: Dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("item label must be non-empty")
        check_positive("size_bytes", self.size_bytes)


class Transaction:
    """An ordered set of items to move in one direction.

    Order matters: HLS segments must be *scheduled* in playout order (the
    player needs earlier segments first), and the greedy scheduler's
    "oldest scheduled item" tie-breaking is defined on this order.
    """

    _ids = itertools.count(1)

    @classmethod
    def _reset_ids(cls) -> None:
        """Restart the id stream (per-experiment isolation; see runner)."""
        cls._ids = itertools.count(1)

    def __init__(
        self,
        items: Sequence[TransferItem],
        direction: Direction = Direction.DOWNLOAD,
        name: Optional[str] = None,
    ) -> None:
        if not items:
            raise ValueError("transaction must contain at least one item")
        labels = [item.label for item in items]
        if len(set(labels)) != len(labels):
            raise ValueError("item labels within a transaction must be unique")
        self.transaction_id = next(Transaction._ids)
        self.items: List[TransferItem] = list(items)
        self.direction = direction
        self.name = name or f"txn-{self.transaction_id}"

    @property
    def total_bytes(self) -> float:
        """Sum of item sizes."""
        return sum(item.size_bytes for item in self.items)

    @property
    def max_item_bytes(self) -> float:
        """Largest item size (the S_m of the paper's waste bound)."""
        return max(item.size_bytes for item in self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[TransferItem]:
        return iter(self.items)

    def __repr__(self) -> str:
        return (
            f"Transaction({self.name!r}, {len(self.items)} items, "
            f"{bytes_to_megabytes(self.total_bytes):.2f} MB, "
            f"{self.direction.value})"
        )


def items_from_sizes(
    sizes: Sequence[float], prefix: str = "item"
) -> List[TransferItem]:
    """Convenience: build items labelled ``prefix-0…`` from raw sizes."""
    if not sizes:
        raise ValueError("need at least one size")
    return [
        TransferItem(label=f"{prefix}-{i}", size_bytes=float(size))
        for i, size in enumerate(sizes)
    ]


def items_from_file(
    url: str, size_bytes: float, chunk_bytes: float = 1_000_000.0
) -> List[TransferItem]:
    """Split one large object into HTTP Range-request items.

    HLS hands the scheduler natural items (segments); a plain file does
    not, but any server supporting Range requests can serve byte windows
    in parallel — this is how 3GOL boosts a single big download. Each
    item's metadata carries the ``(range_start, range_end)`` pair
    (inclusive-exclusive) a client would put in the Range header.
    """
    check_positive("size_bytes", size_bytes)
    check_positive("chunk_bytes", chunk_bytes)
    if not url:
        raise ValueError("url must be non-empty")
    items: List[TransferItem] = []
    offset = 0.0
    index = 0
    while offset < size_bytes:
        end = min(offset + chunk_bytes, size_bytes)
        items.append(
            TransferItem(
                label=f"{url}#range-{index}",
                size_bytes=end - offset,
                metadata={
                    "url": url,
                    "range_start": int(offset),
                    "range_end": int(end),
                },
            )
        )
        offset = end
        index += 1
    return items
