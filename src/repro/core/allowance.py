"""The 3GOL allowance estimator (§6).

In the multi-provider scenario the cellular operator enforces a monthly
volume cap, so 3GOL must only spend *leftover* volume. The paper proposes
a simple estimator: the suggested monthly 3GOL allowance is the mean free
capacity over the τ months before ``t``, discounted by a guard of α sample
standard deviations::

    3GOLa(t) = F̄_u(t) − α · σ̄_u(t)

With τ = 5 and α = 4 the paper finds "around 65% of the available free
capacity to be used by 3GOL with expected overrun time of under 1 day per
month overall".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.util.validate import check_non_negative

#: The paper's chosen history window (months) and guard multiplier.
DEFAULT_TAU = 5
DEFAULT_ALPHA = 4.0
#: Days in a billing month, for converting monthly allowances to the daily
#: budgets the client enforces (the paper reasons in 20 MB/day ≈ 600
#: MB/month units).
DAYS_PER_MONTH = 30.0


@dataclass(frozen=True)
class AllowanceDecision:
    """The estimator's output for one user-month."""

    #: Suggested monthly 3GOL volume (bytes, >= 0).
    monthly_allowance_bytes: float
    #: Mean free capacity over the window.
    mean_free_bytes: float
    #: Sample standard deviation of free capacity over the window.
    stdev_free_bytes: float

    @property
    def daily_allowance_bytes(self) -> float:
        """The per-day budget the device-side component enforces."""
        return self.monthly_allowance_bytes / DAYS_PER_MONTH


class AllowanceEstimator:
    """Computes 3GOLa(t) from a user's past monthly usage."""

    def __init__(self, tau: int = DEFAULT_TAU, alpha: float = DEFAULT_ALPHA) -> None:
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        check_non_negative("alpha", alpha)
        self.tau = int(tau)
        self.alpha = float(alpha)

    def estimate(
        self, cap_bytes: float, usage_history_bytes: Sequence[float]
    ) -> AllowanceDecision:
        """Allowance for the coming month.

        ``usage_history_bytes`` is the user's *primary* (non-3GOL) usage in
        the months before ``t``, most recent last; only the final ``tau``
        entries are used. Usage above cap clamps free capacity at zero.
        """
        check_non_negative("cap_bytes", cap_bytes)
        if not usage_history_bytes:
            raise ValueError("need at least one month of usage history")
        window = [float(u) for u in usage_history_bytes[-self.tau:]]
        free = [max(0.0, cap_bytes - usage) for usage in window]
        mean = sum(free) / len(free)
        if len(free) > 1:
            variance = sum((f - mean) ** 2 for f in free) / (len(free) - 1)
        else:
            variance = 0.0
        stdev = math.sqrt(variance)
        allowance = max(0.0, mean - self.alpha * stdev)
        return AllowanceDecision(
            monthly_allowance_bytes=allowance,
            mean_free_bytes=mean,
            stdev_free_bytes=stdev,
        )


@dataclass(frozen=True)
class EstimatorEvaluation:
    """Aggregate outcome of running the estimator over a user population."""

    #: Fraction of total free capacity the estimator released to 3GOL.
    utilization_of_free: float
    #: Expected cap-overrun days per user-month, assuming 3GOL spends the
    #: allowance uniformly over the month.
    overrun_days_per_month: float
    #: Fraction of user-months where allowance + usage exceeded the cap.
    overrun_month_fraction: float
    user_months: int


def evaluate_estimator(
    cap_bytes_by_user: Dict[str, float],
    usage_by_user: Dict[str, Sequence[float]],
    tau: int = DEFAULT_TAU,
    alpha: float = DEFAULT_ALPHA,
) -> EstimatorEvaluation:
    """Backtest the estimator on per-user monthly usage series.

    For each user and each month ``t`` with at least ``tau`` months of
    history, compute the allowance from months ``t-tau…t-1`` and compare
    against the month's actual usage: the month *overruns* when actual
    usage plus the granted allowance exceeds the cap. Overrun days follow
    the paper's accounting — the fraction of the month by which the
    combined volume overshoots, assuming uniform spending::

        overrun_days = 30 * max(0, usage + allowance - cap) / (usage + allowance)
    """
    estimator = AllowanceEstimator(tau=tau, alpha=alpha)
    total_free = 0.0
    total_granted = 0.0
    overrun_days: List[float] = []
    overrun_months = 0
    user_months = 0
    for user, usage_series in usage_by_user.items():
        cap = cap_bytes_by_user[user]
        series = list(usage_series)
        for t in range(tau, len(series)):
            history = series[t - tau : t]
            decision = estimator.estimate(cap, history)
            actual = series[t]
            free_this_month = max(0.0, cap - actual)
            granted = decision.monthly_allowance_bytes
            total_free += free_this_month
            # Only the part of the grant actually backed by free capacity
            # counts toward utilisation; the rest is overrun, not use.
            total_granted += min(granted, free_this_month)
            combined = actual + granted
            excess = max(0.0, combined - cap)
            if excess > 0.0 and combined > 0.0:
                overrun_months += 1
                overrun_days.append(DAYS_PER_MONTH * excess / combined)
            else:
                overrun_days.append(0.0)
            user_months += 1
    if user_months == 0:
        raise ValueError(
            f"no user-month has more than tau={tau} months of history"
        )
    return EstimatorEvaluation(
        utilization_of_free=(total_granted / total_free) if total_free else 0.0,
        overrun_days_per_month=sum(overrun_days) / user_months,
        overrun_month_fraction=overrun_months / user_months,
        user_months=user_months,
    )
