"""HLS-aware client proxy (§4.1).

"The client component intercepts the extended M3U (m3u8) playlist, and
using the scheduler it pre-fetches the segments by performing parallel
downloads." This module implements that interception: given a playlist
request, it fetches and parses the m3u8 over the wired path, converts the
segment list into a transaction, and hands it to the multipath scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.items import Direction, Transaction, TransferItem
from repro.core.scheduler import TransactionRunner, make_policy
from repro.core.scheduler.runner import RetryPolicy, TransactionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.resilience import TransferGuard
from repro.netsim.fluid import FluidNetwork
from repro.netsim.path import NetworkPath
from repro.web.client import SequentialHttpClient
from repro.web.hls import HlsPlaylist, parse_m3u8
from repro.web.messages import HttpRequest
from repro.web.origin import OriginServer


@dataclass
class VideoDownloadReport:
    """What the user experiences for one onloaded video download."""

    quality: str
    #: Time to fetch and parse the playlist (always over the wired path).
    playlist_time: float
    #: Time from the initial request until the pre-buffer is full — the
    #: paper's "startup waiting time for the user".
    prebuffer_time: Optional[float]
    #: Time from the initial request until every segment is down.
    total_time: float
    result: TransactionResult


def segments_to_items(playlist: HlsPlaylist) -> List[TransferItem]:
    """Convert playlist segments to transaction items, in playout order."""
    return [
        TransferItem(
            label=segment.uri,
            size_bytes=segment.size_bytes,
            metadata={"index": segment.index, "duration_s": segment.duration_s},
        )
        for segment in playlist.segments
    ]


class HlsAwareProxy:
    """The client-side proxy: playlist interception + scheduled prefetch."""

    def __init__(
        self,
        network: FluidNetwork,
        origin: OriginServer,
        wired_path: NetworkPath,
    ) -> None:
        self.network = network
        self.origin = origin
        self.wired_path = wired_path

    def fetch_playlist(self, playlist_uri: str) -> tuple:
        """GET and parse the m3u8 over the wired path.

        Returns ``(playlist, elapsed_seconds)``. The playlist is tiny, so
        it is never worth onloading — the prototype fetches it through the
        gateway and only parallelises the segments.
        """
        response = self.origin.handle(HttpRequest("GET", playlist_uri))
        if not response.ok or response.body is None:
            raise LookupError(f"origin has no playlist at {playlist_uri!r}")
        client = SequentialHttpClient(self.network, self.wired_path)
        elapsed = client.run([(playlist_uri, max(response.body_bytes, 1.0))])
        playlist = parse_m3u8(response.body)
        return playlist, elapsed

    def download(
        self,
        playlist_uri: str,
        paths: Sequence[NetworkPath],
        policy_name: str = "GRD",
        prebuffer_fraction: Optional[float] = 0.2,
        quality_label: str = "",
        guard: Optional["TransferGuard"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        stall_timeout_s: Optional[float] = None,
    ) -> VideoDownloadReport:
        """Play one video through the proxy.

        ``paths`` is the full multipath set (wired + admissible phones);
        ``prebuffer_fraction`` is the player's pre-buffer as a fraction of
        the video duration (None skips the pre-buffer measurement).
        ``guard`` (a :class:`~repro.core.resilience.TransferGuard`) makes
        the download react mid-flight to permit revocations and cap
        exhaustion, degrading to the surviving paths.
        """
        playlist, playlist_time = self.fetch_playlist(playlist_uri)
        items = segments_to_items(playlist)
        transaction = Transaction(
            items, direction=Direction.DOWNLOAD, name=playlist_uri
        )
        runner = TransactionRunner(
            self.network,
            list(paths),
            make_policy(policy_name),
            retry_policy=retry_policy,
            stall_timeout_s=stall_timeout_s,
        )
        if guard is not None:
            guard.attach(runner, paths)
        result = runner.run(transaction)
        if guard is not None:
            guard.finalize(result)
        prebuffer_time: Optional[float] = None
        if prebuffer_fraction is not None:
            needed = playlist.segments_for_prebuffer(prebuffer_fraction)
            prebuffer_time = playlist_time + result.time_to_complete(
                [segment.uri for segment in needed]
            )
        if not quality_label:
            # Playlist URIs follow /<video>/<quality>/index.m3u8; fall
            # back to the parser's synthetic name for foreign layouts.
            parts = [p for p in playlist_uri.split("/") if p]
            quality_label = parts[-2] if len(parts) >= 2 else playlist.quality.name
        return VideoDownloadReport(
            quality=quality_label,
            playlist_time=playlist_time,
            prebuffer_time=prebuffer_time,
            total_time=playlist_time + result.total_time,
            result=result,
        )
