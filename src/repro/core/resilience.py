"""Mid-transfer reaction to revocation, cap exhaustion and churn.

The prototype's session layer must live with authority changing *while a
transaction runs*: the operator revokes a permit when congestion is
detected (§2.4), a phone's daily cap runs out mid-upload (§6), phones
flap in and out of Wi-Fi range (§3). This module provides the two pieces
that tie those signals to the scheduler machinery:

* :class:`TransferGuard` — attached by the proxy / uploader to a
  :class:`~repro.core.scheduler.runner.TransactionRunner`, it meters
  cellular bytes incrementally as items complete, drains a path whose
  cap tracker runs dry, and aborts a path whose permit is revoked,
  degrading the transfer gracefully to the remaining (ultimately
  ADSL-only) set while recording structured
  :class:`~repro.core.scheduler.runner.DegradationEvent` entries;
* :func:`bind_fault_schedule` — arms a seeded
  :class:`~repro.netsim.faults.FaultSchedule` against a runner, mapping
  effective down/up transitions to ``remove_path`` / ``add_path``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.mobile import MobileComponent
from repro.core.permits import PermitServer
from repro.core.scheduler.runner import (
    DegradationEvent,
    ItemRecord,
    TransactionResult,
    TransactionRunner,
)
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.fluid import FluidNetwork
from repro.netsim.path import NetworkPath
from repro.obs.capture import Instrumentation, current as obs_current


class DegradationLog:
    """Thread-safe collector of :class:`DegradationEvent` entries.

    The simulator's :class:`TransactionRunner` records degradations on
    its single-threaded engine; the loopback prototype's proxy and
    client react to bad peers from many worker threads at once. This
    log gives them the same structured vocabulary with the locking the
    threaded data path needs: a peer that stalls or speaks garbage
    fails one transfer, lands one event here, and the component keeps
    serving.

    The log never reads a clock — callers pass their own ``time`` (the
    proto layer uses seconds since the component started), keeping the
    type usable from simulated code bound by the determinism rules.
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self._events: List[DegradationEvent] = []
        self._lock = threading.Lock()
        #: Instrumentation handle; threaded callers only touch locked
        #: counters (never the tracer — their clocks are wall-relative,
        #: which would break trace determinism).
        self._obs = obs if obs is not None else obs_current()

    def record(
        self,
        kind: str,
        time: float = 0.0,
        path_name: str = "",
        item_label: str = "",
        detail: str = "",
    ) -> DegradationEvent:
        """Append one event (returns it, for callers that also log)."""
        event = DegradationEvent(
            time=time,
            kind=kind,
            path_name=path_name,
            item_label=item_label,
            detail=detail,
        )
        with self._lock:
            self._events.append(event)
        if self._obs is not None:
            self._obs.count("proto.degradations", kind=kind)
        return event

    @property
    def events(self) -> Tuple[DegradationEvent, ...]:
        """Snapshot of every recorded event, in arrival order."""
        with self._lock:
            return tuple(self._events)

    def of_kind(self, kind: str) -> Tuple[DegradationEvent, ...]:
        """Events matching one ``kind`` of the shared vocabulary."""
        return tuple(e for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class TransferGuard:
    """Watches permits and caps for the duration of one transfer.

    Lifecycle: build one per transfer, :meth:`attach` it to the runner
    before the transaction starts, :meth:`finalize` after it completes.
    While attached it

    * meters every completed item's bytes into the owning phone's
      :class:`~repro.core.captracker.CapTracker` (incremental metering —
      the pre-churn code metered only after the whole transaction);
    * **drains** a cellular path the moment its tracker's quota runs dry
      (the in-flight copy may finish, mirroring the prototype, which
      "does not abort an in-flight transfer");
    * **aborts** a cellular path the moment the
      :class:`~repro.core.permits.PermitServer` revokes its device's
      permit (an operator order: the radio must go quiet now);
    * **vetoes re-joins** of paths that lost authority: while attached
      it installs itself as the runner's
      :attr:`~repro.core.scheduler.runner.TransactionRunner.rejoin_gate`
      so a fault schedule's ``up`` transition cannot re-enable a path
      whose cap is still dry or whose permit is still revoked.

    Either way the transfer degrades gracefully: remaining items flow
    over the surviving paths, down to ADSL-only, and each reaction lands
    in the runner's degradation log.
    """

    def __init__(
        self,
        components: Mapping[str, MobileComponent],
        permit_server: Optional[PermitServer] = None,
        network: Optional[FluidNetwork] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.components = dict(components)
        self.permit_server = permit_server
        self.network = network
        #: Instrumentation handle (``None``: checkpoints are no-ops).
        self._obs = obs if obs is not None else obs_current()
        self._runner: Optional[TransactionRunner] = None
        self._paths: List[NetworkPath] = []
        self._metered: Dict[str, float] = {}
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._chained: Optional[Callable[[ItemRecord], None]] = None
        self._chained_gate: Optional[
            Callable[[NetworkPath, float], bool]
        ] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _component_for(self, path: NetworkPath) -> Optional[MobileComponent]:
        if path.device is None:
            return None
        return self.components.get(path.device.name)

    def attach(
        self, runner: TransactionRunner, paths: Sequence[NetworkPath]
    ) -> None:
        """Bind to ``runner`` for the coming transaction."""
        if self._runner is not None:
            raise RuntimeError("TransferGuard instances are single-use")
        self._runner = runner
        self._paths = list(paths)
        self._metered = {path.name: 0.0 for path in self._paths}
        if self.network is None:
            self.network = runner.network
        self._chained = runner.on_item_complete
        runner.on_item_complete = self._on_item_complete
        self._chained_gate = runner.rejoin_gate
        runner.rejoin_gate = self._may_rejoin
        if self._obs is not None:
            for path in self._paths:
                component = self._component_for(path)
                if (
                    component is not None
                    and component.cap_tracker is not None
                    and path.device is not None
                ):
                    component.cap_tracker.bind_obs(
                        self._obs, device=path.device.name
                    )
        if self.permit_server is not None:
            self._unsubscribe = self.permit_server.subscribe_revocations(
                self._on_permit_revoked
            )

    def _now(self) -> float:
        assert self.network is not None
        return self.network.time

    # ------------------------------------------------------------------
    # Reactions
    # ------------------------------------------------------------------
    def _on_permit_revoked(self, device_name: str) -> None:
        assert self._runner is not None
        for path in self._paths:
            if path.device is None or path.device.name != device_name:
                continue
            self._runner.remove_path(
                path.name,
                drain=False,
                kind="permit-revoked",
                detail=f"backend revoked {device_name}'s permit",
            )

    def _may_rejoin(self, path: NetworkPath, now: float) -> bool:
        """Runner re-join gate: does ``path`` still have authority?

        A fault schedule's ``up`` transition means the *physical* link
        is back; it says nothing about the session layer. A cellular
        path whose cap ran dry stays out until the tracker's day rolls
        over, and one whose permit was revoked stays out until the
        backend grants a fresh permit (which it refuses while congested,
        §2.4). ADSL and unguarded paths always pass.
        """
        if self._chained_gate is not None and not self._chained_gate(
            path, now
        ):
            return False
        guarded = next(
            (p for p in self._paths if p.name == path.name), None
        )
        if guarded is None:
            return True
        component = self._component_for(guarded)
        if component is None:
            return True
        tracker = component.cap_tracker
        if tracker is not None and not tracker.may_advertise(now):
            return False
        device = guarded.device
        if self.permit_server is not None and device is not None:
            if not self.permit_server.has_valid_permit(device.name, now):
                permit = self.permit_server.request_permit(
                    device.name, device.sector.name, now
                )
                if permit is None:
                    return False
        return True

    def _on_item_complete(self, record: ItemRecord) -> None:
        assert self._runner is not None
        path = next(
            (p for p in self._paths if p.name == record.path_name), None
        )
        if path is not None:
            component = self._component_for(path)
            if component is not None:
                now = self._now()
                component.record_transfer(record.size_bytes, now)
                self._metered[path.name] += record.size_bytes
                tracker = component.cap_tracker
                if tracker is not None and not tracker.may_advertise(now):
                    removed = self._runner.remove_path(
                        path.name,
                        drain=True,
                        kind="cap-exhausted",
                        detail=(
                            f"{path.device.name} exhausted today's quota"
                        ),
                    )
                    if (
                        removed
                        and self._obs is not None
                        and path.device is not None
                    ):
                        self._obs.count(
                            "cap.exhaustions", device=path.device.name
                        )
        if self._chained is not None:
            self._chained(record)

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------
    def finalize(self, result: TransactionResult) -> None:
        """True-up metering once the transaction is over.

        Incremental metering counts winning copies only; the bytes moved
        by aborted duplicates and fault-killed partial transfers are in
        ``result.path_bytes`` — meter the difference so the cap trackers
        see every cellular byte, exactly as the post-hoc metering did.
        """
        now = self._now()
        for path in self._paths:
            component = self._component_for(path)
            if component is None:
                continue
            total = result.path_bytes.get(path.name, 0.0)
            extra = total - self._metered.get(path.name, 0.0)
            if extra > 1e-9:
                component.record_transfer(extra, now)
                self._metered[path.name] = total
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._runner is not None:
            self._runner.rejoin_gate = self._chained_gate
            self._chained_gate = None


def bind_fault_schedule(
    runner: TransactionRunner,
    schedule: FaultSchedule,
    horizon: float,
    network: Optional[FluidNetwork] = None,
) -> List[FaultEvent]:
    """Arm ``schedule`` so its transitions drive ``runner`` membership.

    Every effective ``down`` transition becomes ``remove_path`` and
    every ``up`` becomes ``add_path`` (re-join); transitions for targets
    the runner does not know are ignored, and both calls are idempotent,
    so overlapping schedules compose safely. Returns the armed events.
    """
    network = network or runner.network
    known = {worker.path.name for worker in runner._workers}

    def on_down(event: FaultEvent) -> None:
        if event.target in known:
            runner.remove_path(
                event.target, kind="path-fault", detail=event.kind
            )

    def on_up(event: FaultEvent) -> None:
        if event.target in known:
            runner.add_path(event.target)

    return schedule.arm(network, on_down, on_up, horizon=horizon)
