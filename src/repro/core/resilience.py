"""Mid-transfer reaction to revocation, cap exhaustion and churn.

The prototype's session layer must live with authority changing *while a
transaction runs*: the operator revokes a permit when congestion is
detected (§2.4), a phone's daily cap runs out mid-upload (§6), phones
flap in and out of Wi-Fi range (§3). This module provides the two pieces
that tie those signals to the scheduler machinery:

* :class:`TransferGuard` — attached by the proxy / uploader to a
  :class:`~repro.core.scheduler.runner.TransactionRunner`, it meters
  cellular bytes incrementally as items complete, drains a path whose
  cap tracker runs dry, and aborts a path whose permit is revoked,
  degrading the transfer gracefully to the remaining (ultimately
  ADSL-only) set while recording structured
  :class:`~repro.core.scheduler.runner.DegradationEvent` entries;
* :func:`bind_fault_schedule` — arms a seeded
  :class:`~repro.netsim.faults.FaultSchedule` against a runner, mapping
  effective down/up transitions to ``remove_path`` / ``add_path``;
* :class:`RetryBudget` — a *shared* token-bucket retry budget layered
  over the per-flow :class:`~repro.core.scheduler.runner.RetryPolicy`,
  so a fleet of concurrent flows cannot turn one outage into a retry
  storm;
* :class:`FlowLedger` — the long-running service's standing
  counterpart to the single-use :class:`TransferGuard`: concurrent
  per-flow cap metering with abort true-up, owned by this module so
  authority mutation stays inside the guard layer.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.captracker import CapTracker
from repro.core.mobile import MobileComponent
from repro.core.permits import PermitServer
from repro.core.scheduler.runner import (
    DegradationEvent,
    ItemRecord,
    RetryPolicy,
    TransactionResult,
    TransactionRunner,
)
from repro.netsim.faults import FaultEvent, FaultSchedule
from repro.netsim.fluid import FluidNetwork
from repro.netsim.path import NetworkPath
from repro.obs.capture import Instrumentation, current as obs_current
from repro.obs.schema import canonical_degradation_kind
from repro.util.rng import spawn_rng


class DegradationLog:
    """Thread-safe collector of :class:`DegradationEvent` entries.

    The simulator's :class:`TransactionRunner` records degradations on
    its single-threaded engine; the loopback prototype's proxy and
    client react to bad peers from many worker threads at once. This
    log gives them the same structured vocabulary with the locking the
    threaded data path needs: a peer that stalls or speaks garbage
    fails one transfer, lands one event here, and the component keeps
    serving.

    The log never reads a clock — callers pass their own ``time`` (the
    proto layer uses seconds since the component started), keeping the
    type usable from simulated code bound by the determinism rules.
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self._events: List[DegradationEvent] = []
        self._lock = threading.Lock()
        #: Instrumentation handle; threaded callers only touch locked
        #: counters (never the tracer — their clocks are wall-relative,
        #: which would break trace determinism).
        self._obs = obs if obs is not None else obs_current()

    def record(
        self,
        kind: str,
        time: float = 0.0,
        path_name: str = "",
        item_label: str = "",
        detail: str = "",
    ) -> DegradationEvent:
        """Append one event (returns it, for callers that also log).

        ``kind`` is canonicalised against the schema's degradation
        vocabulary (legacy spellings such as ``peer-stall`` map to
        their canonical kind) so every consumer — hunt oracles,
        trace-diff, ``of_kind`` filters — sees one name per failure
        mode regardless of which layer recorded it.
        """
        event = DegradationEvent(
            time=time,
            kind=canonical_degradation_kind(kind),
            path_name=path_name,
            item_label=item_label,
            detail=detail,
        )
        with self._lock:
            self._events.append(event)
        if self._obs is not None:
            self._obs.count("proto.degradations", kind=event.kind)
        return event

    @property
    def events(self) -> Tuple[DegradationEvent, ...]:
        """Snapshot of every recorded event, in arrival order."""
        with self._lock:
            return tuple(self._events)

    def of_kind(self, kind: str) -> Tuple[DegradationEvent, ...]:
        """Events matching one ``kind`` of the shared vocabulary."""
        return tuple(e for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class TransferGuard:
    """Watches permits and caps for the duration of one transfer.

    Lifecycle: build one per transfer, :meth:`attach` it to the runner
    before the transaction starts, :meth:`finalize` after it completes.
    While attached it

    * meters every completed item's bytes into the owning phone's
      :class:`~repro.core.captracker.CapTracker` (incremental metering —
      the pre-churn code metered only after the whole transaction);
    * **drains** a cellular path the moment its tracker's quota runs dry
      (the in-flight copy may finish, mirroring the prototype, which
      "does not abort an in-flight transfer");
    * **aborts** a cellular path the moment the
      :class:`~repro.core.permits.PermitServer` revokes its device's
      permit (an operator order: the radio must go quiet now);
    * **vetoes re-joins** of paths that lost authority: while attached
      it installs itself as the runner's
      :attr:`~repro.core.scheduler.runner.TransactionRunner.rejoin_gate`
      so a fault schedule's ``up`` transition cannot re-enable a path
      whose cap is still dry or whose permit is still revoked.

    Either way the transfer degrades gracefully: remaining items flow
    over the surviving paths, down to ADSL-only, and each reaction lands
    in the runner's degradation log.
    """

    def __init__(
        self,
        components: Mapping[str, MobileComponent],
        permit_server: Optional[PermitServer] = None,
        network: Optional[FluidNetwork] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.components = dict(components)
        self.permit_server = permit_server
        self.network = network
        #: Instrumentation handle (``None``: checkpoints are no-ops).
        self._obs = obs if obs is not None else obs_current()
        self._runner: Optional[TransactionRunner] = None
        self._paths: List[NetworkPath] = []
        self._metered: Dict[str, float] = {}
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._chained: Optional[Callable[[ItemRecord], None]] = None
        self._chained_gate: Optional[
            Callable[[NetworkPath, float], bool]
        ] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _component_for(self, path: NetworkPath) -> Optional[MobileComponent]:
        if path.device is None:
            return None
        return self.components.get(path.device.name)

    def attach(
        self, runner: TransactionRunner, paths: Sequence[NetworkPath]
    ) -> None:
        """Bind to ``runner`` for the coming transaction."""
        if self._runner is not None:
            raise RuntimeError("TransferGuard instances are single-use")
        self._runner = runner
        self._paths = list(paths)
        self._metered = {path.name: 0.0 for path in self._paths}
        if self.network is None:
            self.network = runner.network
        self._chained = runner.on_item_complete
        runner.on_item_complete = self._on_item_complete
        self._chained_gate = runner.rejoin_gate
        runner.rejoin_gate = self._may_rejoin
        if self._obs is not None:
            for path in self._paths:
                component = self._component_for(path)
                if (
                    component is not None
                    and component.cap_tracker is not None
                    and path.device is not None
                ):
                    component.cap_tracker.bind_obs(
                        self._obs, device=path.device.name
                    )
        if self.permit_server is not None:
            self._unsubscribe = self.permit_server.subscribe_revocations(
                self._on_permit_revoked
            )

    def _now(self) -> float:
        assert self.network is not None
        return self.network.time

    # ------------------------------------------------------------------
    # Reactions
    # ------------------------------------------------------------------
    def _on_permit_revoked(self, device_name: str) -> None:
        assert self._runner is not None
        for path in self._paths:
            if path.device is None or path.device.name != device_name:
                continue
            self._runner.remove_path(
                path.name,
                drain=False,
                kind="permit-revoked",
                detail=f"backend revoked {device_name}'s permit",
            )

    def _may_rejoin(self, path: NetworkPath, now: float) -> bool:
        """Runner re-join gate: does ``path`` still have authority?

        A fault schedule's ``up`` transition means the *physical* link
        is back; it says nothing about the session layer. A cellular
        path whose cap ran dry stays out until the tracker's day rolls
        over, and one whose permit was revoked stays out until the
        backend grants a fresh permit (which it refuses while congested,
        §2.4). ADSL and unguarded paths always pass.
        """
        if self._chained_gate is not None and not self._chained_gate(
            path, now
        ):
            return False
        guarded = next(
            (p for p in self._paths if p.name == path.name), None
        )
        if guarded is None:
            return True
        component = self._component_for(guarded)
        if component is None:
            return True
        tracker = component.cap_tracker
        if tracker is not None and not tracker.may_advertise(now):
            return False
        device = guarded.device
        if self.permit_server is not None and device is not None:
            if not self.permit_server.has_valid_permit(device.name, now):
                permit = self.permit_server.request_permit(
                    device.name, device.sector.name, now
                )
                if permit is None:
                    return False
        return True

    def _on_item_complete(self, record: ItemRecord) -> None:
        assert self._runner is not None
        path = next(
            (p for p in self._paths if p.name == record.path_name), None
        )
        if path is not None:
            component = self._component_for(path)
            if component is not None:
                now = self._now()
                component.record_transfer(record.size_bytes, now)
                self._metered[path.name] += record.size_bytes
                tracker = component.cap_tracker
                if tracker is not None and not tracker.may_advertise(now):
                    removed = self._runner.remove_path(
                        path.name,
                        drain=True,
                        kind="cap-exhausted",
                        detail=(
                            f"{path.device.name} exhausted today's quota"
                        ),
                    )
                    if (
                        removed
                        and self._obs is not None
                        and path.device is not None
                    ):
                        self._obs.count(
                            "cap.exhaustions", device=path.device.name
                        )
        if self._chained is not None:
            self._chained(record)

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------
    def finalize(self, result: TransactionResult) -> None:
        """True-up metering once the transaction is over.

        Incremental metering counts winning copies only; the bytes moved
        by aborted duplicates and fault-killed partial transfers are in
        ``result.path_bytes`` — meter the difference so the cap trackers
        see every cellular byte, exactly as the post-hoc metering did.
        """
        now = self._now()
        for path in self._paths:
            component = self._component_for(path)
            if component is None:
                continue
            total = result.path_bytes.get(path.name, 0.0)
            extra = total - self._metered.get(path.name, 0.0)
            if extra > 1e-9:
                component.record_transfer(extra, now)
                self._metered[path.name] = total
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._runner is not None:
            self._runner.rejoin_gate = self._chained_gate
            self._chained_gate = None


class RetryBudget:
    """Shared token-bucket retry budget with jittered backoff.

    The per-flow :class:`~repro.core.scheduler.runner.RetryPolicy`
    bounds how often *one* item retries; it says nothing about a fleet.
    When an upstream outage hits a service with hundreds of concurrent
    flows, every flow's private policy happily retries, synchronised by
    the outage — a retry storm. The budget is the global brake: a
    token bucket that starts full at ``capacity`` tokens, spends one
    token per retry, and refills ``refill_per_success`` tokens per
    *successful* operation, so sustained retry volume is capped at a
    fraction of successful traffic. Backoff delays come from the
    wrapped policy with multiplicative jitter drawn from the seeded
    RNG, de-synchronising the survivors.

    Thread-safe; deterministic in single-threaded (sim) use because the
    jitter stream is seeded and consumed in call order.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        capacity: float = 20.0,
        refill_per_success: float = 0.1,
        jitter_frac: float = 0.25,
        seed: int = 0,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if capacity < 1.0:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if refill_per_success < 0.0:
            raise ValueError("refill_per_success must be >= 0")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError(
                f"jitter_frac must be in [0, 1], got {jitter_frac}"
            )
        self.policy = policy if policy is not None else RetryPolicy()
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self.jitter_frac = float(jitter_frac)
        self._tokens = float(capacity)
        self._rng = spawn_rng(seed)
        self._lock = threading.Lock()
        self._obs = obs if obs is not None else obs_current()
        #: Grant/denial counters for observability.
        self.granted_count = 0
        self.denied_count = 0

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (snapshot)."""
        with self._lock:
            return self._tokens

    def record_success(self) -> None:
        """A successful operation refills a fraction of a token."""
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.refill_per_success
            )

    def acquire(self, attempt: int) -> Optional[float]:
        """Spend one retry token for recovery attempt ``attempt``.

        Returns the jittered backoff delay (seconds) to sleep before
        retrying, or ``None`` when the retry must not happen — either
        the per-flow policy's ``max_attempts`` is spent or the shared
        bucket is dry. Unlike the runner (which re-queues past budget,
        because losing items is worse), a service flow that gets
        ``None`` fails fast with a structured degradation.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        with self._lock:
            if attempt > self.policy.max_attempts or self._tokens < 1.0:
                self.denied_count += 1
                if self._obs is not None:
                    self._obs.count("service.retry_denials")
                return None
            self._tokens -= 1.0
            self.granted_count += 1
            delay = self.policy.backoff(attempt)
            if delay > 0.0 and self.jitter_frac > 0.0:
                delay += delay * self.jitter_frac * float(
                    self._rng.uniform()
                )
            return delay


class FlowLedger:
    """Standing byte ledger for the long-running onload service.

    :class:`TransferGuard` is single-use: attach, run one transaction,
    finalize. A service relays many concurrent flows against the same
    :class:`~repro.core.captracker.CapTracker` for days. The ledger is
    the standing counterpart, owned by the guard layer so authority
    mutation stays inside it: worker threads meter relayed cellular
    bytes incrementally, an aborted flow is trued up from its total
    byte count on settlement (the ``TransferGuard.finalize`` rule), and
    admission asks the same authority questions the sim-side guard
    asks — cap dry or permit missing means the flow must not take the
    cellular leg.
    """

    def __init__(
        self,
        trackers: Mapping[str, CapTracker],
        permit_server: Optional[PermitServer] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.trackers = dict(trackers)
        self.permit_server = permit_server
        self._obs = obs if obs is not None else obs_current()
        if self._obs is not None:
            # Authority wiring happens here, in the guard layer, so
            # service code never touches tracker internals (RL010).
            for device, tracker in self.trackers.items():
                tracker.bind_obs(self._obs, device=device)
        self._lock = threading.Lock()
        #: flow id -> (device name, bytes metered so far).
        self._flows: Dict[str, Tuple[str, float]] = {}

    def subscribe_revocations(
        self, callback: Callable[[str], None]
    ) -> Callable[[], None]:
        """Register for permit revocations through the guard layer.

        Forwards to the wired :class:`PermitServer`; a ledger without a
        permit backend returns a no-op unsubscribe. Exists so service
        code subscribes via the authority boundary (RL010) instead of
        reaching into the server.
        """
        if self.permit_server is None:
            return lambda: None
        return self.permit_server.subscribe_revocations(callback)

    def open_flow(self, flow_id: str, device: str) -> None:
        """Start accounting for ``flow_id`` on ``device``'s leg."""
        with self._lock:
            if flow_id in self._flows:
                raise ValueError(f"flow {flow_id!r} already open")
            self._flows[flow_id] = (device, 0.0)

    def meter(self, flow_id: str, nbytes: float, now: float) -> None:
        """Meter ``nbytes`` of relayed traffic for an open flow."""
        with self._lock:
            device, metered = self._flows[flow_id]
            self._flows[flow_id] = (device, metered + nbytes)
        tracker = self.trackers.get(device)
        if tracker is not None and nbytes > 0.0:
            tracker.record_usage(nbytes, now)

    def settle(
        self, flow_id: str, total_bytes: float, now: float
    ) -> float:
        """Close a flow, truing up unmetered bytes; returns the true-up.

        ``total_bytes`` is everything the flow moved over the cellular
        leg, including partial transfers cut off by an abort; the
        difference against what :meth:`meter` already recorded is
        metered now, so the tracker sees every cellular byte exactly as
        :meth:`TransferGuard.finalize` guarantees for the sim side.
        """
        with self._lock:
            device, metered = self._flows.pop(flow_id)
        extra = total_bytes - metered
        tracker = self.trackers.get(device)
        if tracker is not None and extra > 1e-9:
            tracker.record_usage(extra, now)
            return extra
        return 0.0

    def may_onload(self, device: str, cell: str, now: float) -> bool:
        """May a new flow take ``device``'s cellular leg right now?

        Cap first (multi-provider rule: advertise iff A(t) > 0), then
        the permit backend when one is wired (network-integrated rule:
        hold or obtain a valid permit). Permit acquisition happens
        here, not in the service, so the RL010 authority boundary
        holds.
        """
        tracker = self.trackers.get(device)
        if tracker is not None and not tracker.may_advertise(now):
            return False
        if self.permit_server is not None:
            if self.permit_server.has_valid_permit(device, now):
                return True
            permit = self.permit_server.request_permit(
                device, cell, now
            )
            return permit is not None
        return True

    def open_count(self) -> int:
        """Flows currently open in the ledger."""
        with self._lock:
            return len(self._flows)


def bind_fault_schedule(
    runner: TransactionRunner,
    schedule: FaultSchedule,
    horizon: float,
    network: Optional[FluidNetwork] = None,
) -> List[FaultEvent]:
    """Arm ``schedule`` so its transitions drive ``runner`` membership.

    Every effective ``down`` transition becomes ``remove_path`` and
    every ``up`` becomes ``add_path`` (re-join); transitions for targets
    the runner does not know are ignored, and both calls are idempotent,
    so overlapping schedules compose safely. Returns the armed events.
    """
    network = network or runner.network
    known = {worker.path.name for worker in runner._workers}

    def on_down(event: FaultEvent) -> None:
        if event.target in known:
            runner.remove_path(
                event.target, kind="path-fault", detail=event.kind
            )

    def on_up(event: FaultEvent) -> None:
        if event.target in known:
            runner.add_path(event.target)

    return schedule.arm(network, on_down, on_up, horizon=horizon)
