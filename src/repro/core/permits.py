"""Network-integrated permit backend (§2.4).

In the single-operator deployment, "each device receives the permission to
transmit from the 3GOL backend server, which is revoked by the same when
congestion is detected. The backend server interfaces with the 3G network
monitoring system and checks whether utilization in the affected area is
below an acceptance threshold. If it is, the transmission is authorized
and a permit is cached for a certain duration (few minutes). Else, the
transmission is denied, and the cellular device does not advertise its
availability on the Wi-Fi network."
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.capture import Instrumentation, current as obs_current
from repro.util.validate import check_fraction, check_positive

#: "cached for a certain duration (few minutes)"
DEFAULT_PERMIT_TTL = 300.0
#: Cells above this utilisation do not accept onloading.
DEFAULT_ACCEPTANCE_THRESHOLD = 0.70


@dataclass
class Permit:
    """An authorization for one device to onload, valid until ``expires_at``."""

    device_name: str
    granted_at: float
    expires_at: float
    revoked: bool = False

    def is_valid(self, now: float) -> bool:
        """True while unexpired and not revoked."""
        return not self.revoked and now < self.expires_at


class PermitServer:
    """The 3GOL backend of the network-integrated architecture.

    ``utilization_fn(cell_name, now) -> fraction`` is the interface to the
    operator's network monitoring system; experiments plug in a diurnal
    profile or a live measurement from the simulator.

    Safe under concurrent mutation: the permit table, counters and
    listener list are lock-guarded so the long-running onload service
    can grant/revoke from many threads against one shared server.
    Revocation listeners fire *outside* the lock (on a snapshot of the
    list) so a listener that re-enters the server cannot deadlock it.
    Single-threaded sim runs are unaffected — the interleaving is
    unchanged.
    """

    def __init__(
        self,
        utilization_fn: Callable[[str, float], float],
        acceptance_threshold: float = DEFAULT_ACCEPTANCE_THRESHOLD,
        permit_ttl: float = DEFAULT_PERMIT_TTL,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.utilization_fn = utilization_fn
        #: Instrumentation handle (``None``: checkpoints are no-ops).
        self.obs = obs if obs is not None else obs_current()
        self.acceptance_threshold = check_fraction(
            "acceptance_threshold", acceptance_threshold
        )
        self.permit_ttl = check_positive("permit_ttl", permit_ttl)
        self._permits: Dict[str, Permit] = {}
        self._revocation_listeners: List[Callable[[str], None]] = []
        self._lock = threading.RLock()
        #: Grant/deny counters for observability.
        self.granted_count = 0
        self.denied_count = 0
        self.revoked_count = 0

    def subscribe_revocations(
        self, callback: Callable[[str], None]
    ) -> Callable[[], None]:
        """Register ``callback(device_name)`` to fire on each revocation.

        This is how an in-flight transfer learns its permit was pulled
        (the prototype's backend pushes the revocation to the device).
        Returns an unsubscribe callable; unsubscribing twice is a no-op.
        """
        with self._lock:
            self._revocation_listeners.append(callback)

        def unsubscribe() -> None:
            with self._lock, contextlib.suppress(ValueError):
                self._revocation_listeners.remove(callback)

        return unsubscribe

    def request_permit(
        self, device_name: str, cell_name: str, now: float
    ) -> Optional[Permit]:
        """Ask for (or refresh) permission for ``device_name`` to onload.

        Returns a valid permit when the device already holds one or the
        cell's utilisation is under the acceptance threshold; ``None`` on
        denial.
        """
        with self._lock:
            existing = self._permits.get(device_name)
            if existing is not None and existing.is_valid(now):
                return existing
            utilization = check_fraction(
                "utilization", self.utilization_fn(cell_name, now)
            )
            if utilization >= self.acceptance_threshold:
                self.denied_count += 1
                if self.obs is not None:
                    self.obs.event(
                        "permit.deny",
                        time=now,
                        device=device_name,
                        cell=cell_name,
                        utilization=utilization,
                    )
                    self.obs.count("permits.denied")
                return None
            permit = Permit(
                device_name=device_name,
                granted_at=now,
                expires_at=now + self.permit_ttl,
            )
            self._permits[device_name] = permit
            self.granted_count += 1
            if self.obs is not None:
                self.obs.event(
                    "permit.grant",
                    time=now,
                    device=device_name,
                    cell=cell_name,
                    expires_at=permit.expires_at,
                )
                self.obs.count("permits.granted")
            return permit

    def has_valid_permit(self, device_name: str, now: float) -> bool:
        """True when the device may currently onload."""
        with self._lock:
            permit = self._permits.get(device_name)
            return permit is not None and permit.is_valid(now)

    def revoke(self, device_name: str) -> bool:
        """Congestion detected: pull the device's permit.

        Returns ``True`` if an active permit was revoked.
        """
        with self._lock:
            permit = self._permits.get(device_name)
            if permit is None or permit.revoked:
                return False
            permit.revoked = True
            self.revoked_count += 1
            if self.obs is not None:
                # revoke() has no clock parameter; the event carries a
                # null timestamp rather than inventing one.
                self.obs.event("permit.revoke", device=device_name)
                self.obs.count("permits.revoked")
            listeners = list(self._revocation_listeners)
        for listener in listeners:
            listener(device_name)
        return True

    def revoke_cell(self, device_names: Iterable[str]) -> int:
        """Revoke every listed device (a whole congested cell); returns count."""
        return sum(1 for name in device_names if self.revoke(name))
