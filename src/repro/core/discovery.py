"""Bonjour-like service discovery on the home LAN (§2.4, §4.1).

The mobile component "advertises the device availability through a
discovery protocol like Bonjour only if the device has an active
permission by the cellular network" (network-integrated) or while its cap
quota A(t) is positive (multi-provider). The client component "builds the
set of admissible cellular devices (denoted by Φ) by discovering them on
the Wi-Fi network".

This module models the registry: services announce and withdraw
advertisements; a browser snapshot at time *t* yields Φ(t). TTL handling
mirrors mDNS behaviour — a record that is not refreshed disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.validate import check_positive

#: Service type string in DNS-SD convention.
SERVICE_TYPE = "_3gol._tcp.local."
#: Default advertisement time-to-live (mDNS default is 120 s for
#: host records; we use the same order).
DEFAULT_TTL = 120.0


@dataclass(frozen=True)
class ServiceRecord:
    """One advertisement: a device offering its 3G proxy on the LAN."""

    device_name: str
    port: int
    announced_at: float
    ttl: float = DEFAULT_TTL

    def expires_at(self) -> float:
        """Time the record ages out unless refreshed."""
        return self.announced_at + self.ttl


class DiscoveryRegistry:
    """The LAN's view of advertised 3GOL proxies."""

    def __init__(self) -> None:
        self._records: Dict[str, ServiceRecord] = {}

    def announce(
        self,
        device_name: str,
        now: float,
        port: int = 8080,
        ttl: float = DEFAULT_TTL,
    ) -> ServiceRecord:
        """Publish (or refresh) a device's advertisement."""
        if not device_name:
            raise ValueError("device_name must be non-empty")
        check_positive("ttl", ttl)
        if not 1 <= port <= 65535:
            raise ValueError(f"invalid port {port}")
        record = ServiceRecord(
            device_name=device_name, port=port, announced_at=now, ttl=ttl
        )
        self._records[device_name] = record
        return record

    def withdraw(self, device_name: str) -> bool:
        """Remove a device's advertisement (goodbye packet).

        Returns ``True`` if a record was present.
        """
        return self._records.pop(device_name, None) is not None

    def expire(self, now: float) -> List[str]:
        """Sweep out every record that lapsed by ``now``.

        :meth:`browse` prunes lazily as a side effect of reads; this is
        the explicit sweep, so Φ shrinks deterministically when an
        advertisement lapses even if nobody browses (the session calls
        it before building the multipath set). Returns the names of the
        devices whose records were dropped, sorted.
        """
        expired = sorted(
            name
            for name, record in self._records.items()
            if record.expires_at() <= now
        )
        for name in expired:
            del self._records[name]
        return expired

    def browse(self, now: float) -> List[ServiceRecord]:
        """Snapshot of live advertisements at ``now`` — the admissible set Φ.

        Expired records are dropped from the registry as a side effect,
        like an mDNS cache aging out (the explicit form is
        :meth:`expire`).
        """
        self.expire(now)
        return sorted(self._records.values(), key=lambda r: r.device_name)

    def lookup(self, device_name: str, now: float) -> Optional[ServiceRecord]:
        """A single device's live record, or ``None``."""
        record = self._records.get(device_name)
        if record is None or record.expires_at() <= now:
            return None
        return record

    def __len__(self) -> int:
        return len(self._records)
