"""MP-TCP with coupled congestion control, as the paper observed it.

§5: "We experimented with MP-TCP and it provided no benefit due to the
issues probably related to the Coupled Congestion Control (CCC) algorithm
of MP-TCP that is not optimized for wireless use yet."

In the home deployment the MP-TCP connection's *primary* subflow runs
over the ADSL line; the 3G paths join as secondary subflows. Coupled
congestion control bounds the aggregate so the connection is no more
aggressive than a single TCP on its best path, and on lossy/variable
wireless secondaries the 2013-era coupling (LIA) kept their windows near
collapse — the realised aggregate hovered at the primary's throughput
plus a small residue. This module models that: an MP-TCP transfer runs
as a single fluid flow over a virtual link whose capacity is

    primary(t) + coupling_efficiency * sum(secondaries, t)

with ``coupling_efficiency`` around 0.05 for CCC on wireless (the
paper's "no benefit" observation). Setting it to 1.0 models an idealised
uncoupled MP-TCP. Against either, the 3GOL application-level scheduler
captures the full sum without transport coupling — which is exactly why
the paper went application-level.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.items import Transaction
from repro.netsim.fluid import Flow, FluidNetwork
from repro.netsim.link import Link
from repro.netsim.path import NetworkPath
from repro.util.validate import check_fraction

#: Default CCC efficiency on wireless subflows (the "no benefit" regime).
DEFAULT_COUPLING_EFFICIENCY = 0.05


class CoupledMptcpLink(Link):
    """Virtual link exposing an MP-TCP connection's aggregate capacity."""

    def __init__(
        self,
        paths: Sequence[NetworkPath],
        coupling_efficiency: float = DEFAULT_COUPLING_EFFICIENCY,
        name: str = "mptcp",
    ) -> None:
        """``paths[0]`` is the primary subflow (the wired path)."""
        if not paths:
            raise ValueError("need at least one subflow path")
        super().__init__(name, 0.0)
        self.paths = list(paths)
        self.coupling_efficiency = check_fraction(
            "coupling_efficiency", coupling_efficiency
        )

    def capacity_at(self, time: float) -> float:
        """Coupled aggregate rate: primary plus discounted secondaries."""
        rates = [path.capacity_estimate(time) for path in self.paths]
        primary = rates[0]
        if primary is math.inf:
            raise ValueError("subflow path has unbounded capacity")
        return primary + self.coupling_efficiency * sum(rates[1:])

    def next_change_after(self, time: float) -> float:
        """Earliest capacity change across every subflow's links."""
        return min(
            link.next_change_after(time)
            for path in self.paths
            for link in path.links
        )


def mptcp_transfer_time(
    network: FluidNetwork,
    paths: Sequence[NetworkPath],
    transaction: Transaction,
    coupling_efficiency: float = DEFAULT_COUPLING_EFFICIENCY,
) -> float:
    """Run a whole transaction as sequential MP-TCP transfers.

    MP-TCP is transport-level: the application still requests items one
    at a time over its single (multipath) connection, so items move
    sequentially at the coupled aggregate rate. Returns the total time.
    """
    link = CoupledMptcpLink(paths, coupling_efficiency)
    start = network.time
    finished: List[Optional[float]] = [None]
    queue = list(transaction.items)
    # Connection setup: the primary subflow's start cost.
    primary_delay = paths[0].start_delay(start, fresh_connection=True)

    def next_item(first: bool) -> None:
        item = queue.pop(0)

        def complete(flow: Flow, now: float) -> None:
            if queue:
                next_item(False)
            else:
                finished[0] = now

        delay = primary_delay if first else paths[0].rtt.request_overhead()
        network.add_flow(
            Flow(
                item.size_bytes,
                [link],
                on_complete=complete,
                label=f"mptcp:{item.label}",
            ),
            delay=delay,
        )

    next_item(True)
    network.run()
    if finished[0] is None:
        raise RuntimeError("MP-TCP transfer never completed")
    return finished[0] - start
