"""Device-side cap tracking (§6).

In the multi-provider architecture "the component running on the cellular
device can track 3GOL data usage U(t) and estimate the 3GOL allowance
3GOLa(t). If the available quota A(t) = 3GOLa(t) − U(t) is greater than
zero, the device advertises itself. […] Thus, we need no input from the
network."

:class:`CapTracker` is that component: it holds the device's daily budget,
meters every byte the 3GOL proxy moves, and answers the single question the
discovery layer asks — *may this device advertise right now?*
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.util.validate import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.capture import Instrumentation

_SECONDS_PER_DAY = 86_400.0


@dataclass
class CapTracker:
    """Tracks 3GOL usage against a per-day budget, with daily reset.

    Safe under concurrent mutation: the simulator meters from a single
    engine thread, but the long-running onload service meters many
    relay flows against one shared tracker at once, so every read and
    write of the counters goes through an internal lock. The lock adds
    no nondeterminism in sim mode — with one thread the interleaving is
    unchanged.
    """

    daily_budget_bytes: float
    #: Usage already metered today (bytes).
    used_today_bytes: float = 0.0
    #: Day index (simulation time // 86400) the counter belongs to.
    current_day: int = 0
    #: Total usage per day index, kept for analysis.
    usage_by_day: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative("daily_budget_bytes", self.daily_budget_bytes)
        check_non_negative("used_today_bytes", self.used_today_bytes)
        # Instrumentation and the lock live in instance attributes (not
        # dataclass fields) so serializers walking `dataclasses.fields`
        # never see the handles.
        self._obs: Optional["Instrumentation"] = None
        self._obs_device: str = ""
        self._lock = threading.RLock()

    def bind_obs(
        self, obs: Optional["Instrumentation"], device: str = ""
    ) -> None:
        """Attach an instrumentation handle, labelled with ``device``.

        The :class:`~repro.core.resilience.TransferGuard` binds each
        attached phone's tracker so metered bytes and remaining quota
        surface as ``cap.metered_bytes`` / ``cap.available_bytes``.
        """
        self._obs = obs
        self._obs_device = device

    def _roll(self, now: float) -> None:
        day = int(now // _SECONDS_PER_DAY)
        if day != self.current_day:
            if day < self.current_day:
                raise ValueError("time went backwards in CapTracker")
            self.current_day = day
            self.used_today_bytes = 0.0

    def available_bytes(self, now: float) -> float:
        """A(t): remaining 3GOL quota for the current day."""
        with self._lock:
            self._roll(now)
            return max(
                0.0, self.daily_budget_bytes - self.used_today_bytes
            )

    def may_advertise(self, now: float) -> bool:
        """Paper rule: advertise iff A(t) > 0."""
        return self.available_bytes(now) > 0.0

    def record_usage(self, nbytes: float, now: float) -> None:
        """Meter ``nbytes`` of 3GOL traffic at time ``now``.

        Usage may overshoot the budget: the device only *stops offering*
        once over budget, it does not abort an in-flight transfer (same as
        the prototype). The overshoot shows up in ``usage_by_day``.
        """
        check_non_negative("nbytes", nbytes)
        with self._lock:
            self._roll(now)
            self.used_today_bytes += nbytes
            day = self.current_day
            self.usage_by_day[day] = (
                self.usage_by_day.get(day, 0.0) + nbytes
            )
            remaining = max(
                0.0, self.daily_budget_bytes - self.used_today_bytes
            )
        if self._obs is not None:
            self._obs.count(
                "cap.metered_bytes", amount=nbytes, device=self._obs_device
            )
            self._obs.gauge(
                "cap.available_bytes",
                remaining,
                device=self._obs_device,
            )

    @property
    def total_used_bytes(self) -> float:
        """All 3GOL bytes ever metered by this tracker."""
        with self._lock:
            return sum(self.usage_by_day.values())
