"""Device-side cap tracking (§6).

In the multi-provider architecture "the component running on the cellular
device can track 3GOL data usage U(t) and estimate the 3GOL allowance
3GOLa(t). If the available quota A(t) = 3GOLa(t) − U(t) is greater than
zero, the device advertises itself. […] Thus, we need no input from the
network."

:class:`CapTracker` is that component: it holds the device's daily budget,
meters every byte the 3GOL proxy moves, and answers the single question the
discovery layer asks — *may this device advertise right now?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.validate import check_non_negative

_SECONDS_PER_DAY = 86_400.0


@dataclass
class CapTracker:
    """Tracks 3GOL usage against a per-day budget, with daily reset."""

    daily_budget_bytes: float
    #: Usage already metered today (bytes).
    used_today_bytes: float = 0.0
    #: Day index (simulation time // 86400) the counter belongs to.
    current_day: int = 0
    #: Total usage per day index, kept for analysis.
    usage_by_day: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_non_negative("daily_budget_bytes", self.daily_budget_bytes)
        check_non_negative("used_today_bytes", self.used_today_bytes)

    def _roll(self, now: float) -> None:
        day = int(now // _SECONDS_PER_DAY)
        if day != self.current_day:
            if day < self.current_day:
                raise ValueError("time went backwards in CapTracker")
            self.current_day = day
            self.used_today_bytes = 0.0

    def available_bytes(self, now: float) -> float:
        """A(t): remaining 3GOL quota for the current day."""
        self._roll(now)
        return max(0.0, self.daily_budget_bytes - self.used_today_bytes)

    def may_advertise(self, now: float) -> bool:
        """Paper rule: advertise iff A(t) > 0."""
        return self.available_bytes(now) > 0.0

    def record_usage(self, nbytes: float, now: float) -> None:
        """Meter ``nbytes`` of 3GOL traffic at time ``now``.

        Usage may overshoot the budget: the device only *stops offering*
        once over budget, it does not abort an in-flight transfer (same as
        the prototype). The overshoot shows up in ``usage_by_day``.
        """
        check_non_negative("nbytes", nbytes)
        self._roll(now)
        self.used_today_bytes += nbytes
        day = self.current_day
        self.usage_by_day[day] = self.usage_by_day.get(day, 0.0) + nbytes

    @property
    def total_used_bytes(self) -> float:
        """All 3GOL bytes ever metered by this tracker."""
        return sum(self.usage_by_day.values())
