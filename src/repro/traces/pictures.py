"""Synthetic photo sets (§5.2).

"We repeatedly upload a set of 30 pictures with average size of 2.5 MB and
standard deviation of 0.74 MB. We obtain these values from a set of 200
pictures taken with iPhone 5 and iPhone 4S." The generator draws from a
normal with those moments, truncated to a plausible JPEG range.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.util.rng import SeedLike, spawn_rng
from repro.util.units import MB
from repro.web.upload import Photo

#: The paper's photo-set statistics.
DEFAULT_COUNT = 30
MEAN_BYTES = 2.5 * MB
STDEV_BYTES = 0.74 * MB
#: Truncation: no real camera JPEG of that era is under ~0.3 MB or (at
#: 8 Mpx) much over ~6 MB.
MIN_BYTES = 0.3 * MB
MAX_BYTES = 6.0 * MB


def generate_photo_set(
    count: int = DEFAULT_COUNT,
    seed: SeedLike = 0,
    mean_bytes: float = MEAN_BYTES,
    stdev_bytes: float = STDEV_BYTES,
) -> List[Photo]:
    """Draw a photo set with the paper's size distribution."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = spawn_rng(seed)
    sizes = np.clip(
        rng.normal(mean_bytes, stdev_bytes, size=count), MIN_BYTES, MAX_BYTES
    )
    return [
        Photo(name=f"IMG_{i:04d}.jpg", size_bytes=float(size))
        for i, size in enumerate(sizes)
    ]
