"""Synthetic DSLAM flow-level trace (§6, Fig. 11).

The paper's trace covers "all subscribers connected to one DSLAM in a
major European city" over 24 hours (April 2011), with 3 Mbps ADSL lines.
Reported statistics, all matched by this generator:

* 68% of subscribers watched at least one video;
* a video user views 14.12 videos/day on average (median 6, sd 30.13) —
  a lognormal count fits those three moments almost exactly;
* video sizes average ~50 MB (the paper cites [Finamore et al.]);
* request times follow the residential wired diurnal profile (Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.netsim.diurnal import WIRED_PROFILE, DiurnalProfile
from repro.util.rng import SeedLike, spawn_rng
from repro.util.units import MB, mbps

#: Line speed of the §6 trace.
DSLAM_ADSL_DOWN_BPS = mbps(3.0)

#: Videos-per-day lognormal: median 6 => mu = ln 6; mean 14.12 =>
#: sigma^2 = 2 ln(14.12/6). This also lands the sd near the reported 30.13.
_VIDEOS_MU = math.log(6.0)
_VIDEOS_SIGMA = math.sqrt(2.0 * math.log(14.12 / 6.0))

#: Fraction of subscribers with at least one video session.
VIDEO_USER_FRACTION = 0.68

#: Video size lognormal: mean 50 MB. The spread (sigma 0.35 in log space,
#: median ~47 MB) is calibrated jointly with the video-count distribution
#: so the Fig. 11a speedup CDF matches the paper's tail: only ~5% of users
#: have so little daily demand that the 40 MB budget doubles their speed.
_SIZE_SIGMA = 0.35
_SIZE_MU = math.log(50.0 * MB) - _SIZE_SIGMA**2 / 2.0

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class VideoRequest:
    """One HTTP video session from the trace."""

    user_id: str
    time_s: float
    size_bytes: float
    url: str


@dataclass(frozen=True)
class DslamTrace:
    """The 24-hour trace: subscribers and their video requests."""

    n_subscribers: int
    requests: Tuple[VideoRequest, ...]
    adsl_down_bps: float = DSLAM_ADSL_DOWN_BPS

    @property
    def video_users(self) -> Tuple[str, ...]:
        """Ids of subscribers with at least one video request."""
        return tuple(sorted({r.user_id for r in self.requests}))

    def requests_by_user(self) -> dict:
        """Requests grouped per user, each list time-ordered."""
        grouped: dict = {}
        for request in self.requests:
            grouped.setdefault(request.user_id, []).append(request)
        for requests in grouped.values():
            requests.sort(key=lambda r: r.time_s)
        return grouped

    def hourly_volume_bytes(self) -> np.ndarray:
        """Requested video bytes per hour of day (24 bins)."""
        volumes = np.zeros(24)
        for request in self.requests:
            hour = int(request.time_s // 3600) % 24
            volumes[hour] += request.size_bytes
        return volumes


def _sample_request_times(
    count: int, profile: DiurnalProfile, rng: np.random.Generator
) -> np.ndarray:
    """Draw request times over the day, weighted by the diurnal profile."""
    # Rejection-free: sample hour bins by profile weight, uniform within.
    weights = np.array(profile.hourly, dtype=float)
    weights = weights / weights.sum()
    hours = rng.choice(24, size=count, p=weights)
    return hours * 3600.0 + rng.uniform(0.0, 3600.0, size=count)


def generate_dslam_trace(
    n_subscribers: int = 2000,
    seed: SeedLike = 0,
    profile: DiurnalProfile = WIRED_PROFILE,
    max_videos_per_user: int = 400,
    min_videos_per_user: int = 2,
) -> DslamTrace:
    """Generate one synthetic DSLAM day.

    ``n_subscribers`` defaults to 2 000 rather than the paper's 18 000 to
    keep experiment runtimes sensible; every §6 analysis is per-user or
    per-byte normalised, so the population size only affects smoothing.
    ``min_videos_per_user`` defaults to 2: a "video user" in the paper's
    24-hour trace almost never has a single session, and the floor is what
    keeps the Fig. 11a speedup tail (users whose whole demand fits the
    budget) at the paper's ~5% rather than inflated by one-video users.
    """
    if n_subscribers < 1:
        raise ValueError(f"n_subscribers must be >= 1, got {n_subscribers}")
    rng = spawn_rng(seed)
    requests: List[VideoRequest] = []
    n_video_users = int(round(n_subscribers * VIDEO_USER_FRACTION))
    for i in range(n_video_users):
        user_id = f"dsl-{i:05d}"
        count = int(
            np.clip(
                round(float(rng.lognormal(_VIDEOS_MU, _VIDEOS_SIGMA))),
                min_videos_per_user,
                max_videos_per_user,
            )
        )
        times = _sample_request_times(count, profile, rng)
        sizes = rng.lognormal(_SIZE_MU, _SIZE_SIGMA, size=count)
        for k in range(count):
            requests.append(
                VideoRequest(
                    user_id=user_id,
                    time_s=float(times[k] % _SECONDS_PER_DAY),
                    size_bytes=float(sizes[k]),
                    url=f"http://video.example/{user_id}/{k}",
                )
            )
    requests.sort(key=lambda r: (r.time_s, r.user_id))
    return DslamTrace(n_subscribers=n_subscribers, requests=tuple(requests))
