"""Synthetic 3G web traffic (§2.2, Fig. 1; Table 1's first dataset).

The paper's "3G web traffic" dataset is "HTTP traffic logs for one large
cellular network ... for 24 hr period, Oct 2011, millions of users". Two
views of it are provided:

* :func:`hourly_volume_series` — the aggregate hourly volumes Fig. 1
  plots, straight from the parametric diurnal profile;
* :func:`generate_web_log` — a request-level log (user, time, content
  category, bytes) whose aggregate reproduces the same diurnal shape,
  for analyses that need per-request granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.netsim.diurnal import MOBILE_PROFILE, DiurnalProfile
from repro.util.rng import SeedLike, spawn_rng
from repro.util.validate import check_non_negative, check_positive

_SECONDS_PER_DAY = 86_400.0

#: Content mix of 2011-era mobile HTTP traffic: (category, probability,
#: lognormal median bytes, lognormal sigma). Roughly: lots of small page
#: and API fetches, fewer but much larger media objects.
CONTENT_MIX: Tuple[Tuple[str, float, float, float], ...] = (
    ("page", 0.45, 40_000.0, 1.2),
    ("image", 0.30, 90_000.0, 1.0),
    ("api", 0.15, 4_000.0, 0.8),
    ("media", 0.10, 1_500_000.0, 1.1),
)


@dataclass(frozen=True)
class WebRequest:
    """One HTTP request from the cellular log."""

    user_id: str
    time_s: float
    category: str
    size_bytes: float


@dataclass(frozen=True)
class WebTrafficLog:
    """A day of mobile HTTP requests."""

    requests: Tuple[WebRequest, ...]

    @property
    def total_bytes(self) -> float:
        """Volume over the whole day."""
        return sum(r.size_bytes for r in self.requests)

    def hourly_volume_bytes(self) -> np.ndarray:
        """Bytes per hour of day (the Fig. 1 aggregation)."""
        volumes = np.zeros(24)
        for request in self.requests:
            volumes[int(request.time_s // 3600) % 24] += request.size_bytes
        return volumes

    def category_share(self, category: str) -> float:
        """Fraction of requests in one content category."""
        if not self.requests:
            return 0.0
        return sum(
            1 for r in self.requests if r.category == category
        ) / len(self.requests)


def generate_web_log(
    n_users: int = 500,
    requests_per_user: float = 40.0,
    seed: SeedLike = 0,
    profile: DiurnalProfile = MOBILE_PROFILE,
) -> WebTrafficLog:
    """Generate a request-level mobile HTTP log.

    Request counts are Poisson per user; times follow the cellular
    diurnal profile; categories and sizes follow :data:`CONTENT_MIX`.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    check_positive("requests_per_user", requests_per_user)
    rng = spawn_rng(seed)
    weights = np.array(profile.hourly, dtype=float)
    weights = weights / weights.sum()
    categories = [c for c, _, _, _ in CONTENT_MIX]
    probabilities = np.array([p for _, p, _, _ in CONTENT_MIX])
    probabilities = probabilities / probabilities.sum()
    medians = {c: m for c, _, m, _ in CONTENT_MIX}
    sigmas = {c: s for c, _, _, s in CONTENT_MIX}
    requests: List[WebRequest] = []
    for i in range(n_users):
        count = int(rng.poisson(requests_per_user))
        if count == 0:
            continue
        hours = rng.choice(24, size=count, p=weights)
        times = hours * 3600.0 + rng.uniform(0.0, 3600.0, size=count)
        picks = rng.choice(categories, size=count, p=probabilities)
        for t, category in zip(times, picks):
            size = float(
                rng.lognormal(
                    np.log(medians[category]), sigmas[category]
                )
            )
            requests.append(
                WebRequest(
                    user_id=f"mob-{i:05d}",
                    time_s=float(t % _SECONDS_PER_DAY),
                    category=str(category),
                    size_bytes=size,
                )
            )
    requests.sort(key=lambda r: (r.time_s, r.user_id))
    return WebTrafficLog(requests=tuple(requests))


def hourly_volume_series(
    total_daily_bytes: float,
    profile: DiurnalProfile = MOBILE_PROFILE,
    noise_sigma: float = 0.0,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Hourly traffic volumes (bytes) summing to ``total_daily_bytes``.

    Volumes follow the diurnal profile's shape; ``noise_sigma`` adds
    multiplicative lognormal sampling noise per hour (the series is then
    re-normalised so the daily total is preserved).
    """
    check_positive("total_daily_bytes", total_daily_bytes)
    check_non_negative("noise_sigma", noise_sigma)
    weights = np.array(profile.hourly, dtype=float)
    if noise_sigma > 0.0:
        rng = spawn_rng(seed)
        weights = weights * np.exp(rng.normal(0.0, noise_sigma, size=24))
    weights = weights / weights.sum()
    return weights * total_daily_bytes


def peak_hour_volume(series: np.ndarray) -> float:
    """Largest hourly volume of a series."""
    if len(series) != 24:
        raise ValueError(f"need 24 hourly values, got {len(series)}")
    return float(np.max(series))


def normalized(series: np.ndarray) -> np.ndarray:
    """Series scaled so its peak is 1.0 (the Fig. 1 presentation)."""
    peak = peak_hour_volume(series)
    if peak <= 0.0:
        raise ValueError("series must have a positive peak")
    return np.asarray(series, dtype=float) / peak
