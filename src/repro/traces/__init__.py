"""Synthetic data sources.

The paper's evaluation leans on four proprietary datasets (its Table 1):
3G web-traffic logs, per-user monthly demand from a mobile network
operator (MNO), a DSLAM flow-level trace, and the handset measurement
campaign. None are publicly available, so this package generates seeded
synthetic equivalents matching every statistic the paper reports about
them; DESIGN.md §2 records the substitutions.
"""

from repro.traces.mno import MnoDataset, MnoUser, generate_mno_dataset
from repro.traces.dslam import (
    DslamTrace,
    VideoRequest,
    generate_dslam_trace,
)
from repro.traces.webtraffic import (
    WebRequest,
    WebTrafficLog,
    generate_web_log,
    hourly_volume_series,
)
from repro.traces.pictures import generate_photo_set
from repro.traces.handsets import (
    MeasurementSample,
    measure_cluster_throughput,
)

__all__ = [
    "MnoDataset",
    "MnoUser",
    "generate_mno_dataset",
    "DslamTrace",
    "VideoRequest",
    "generate_dslam_trace",
    "WebRequest",
    "WebTrafficLog",
    "generate_web_log",
    "hourly_volume_series",
    "generate_photo_set",
    "MeasurementSample",
    "measure_cluster_throughput",
]
