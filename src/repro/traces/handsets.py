"""The §3 handset measurement campaign, on the simulator.

The paper programmed 10 Samsung Galaxy S II handsets to download/upload
2 MB files from six locations, adding one device every 20 minutes, and
later ran hourly measurements in groups of five, three and one device over
five days. This module is the campaign driver: it builds the location's
cellular deployment, runs the same transfer pattern as concurrent fluid
flows, and reports per-device and aggregate throughput samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.netsim.fluid import Flow, FluidNetwork
from repro.netsim.path import NetworkPath
from repro.netsim.topology import Household, HouseholdConfig, LocationProfile
from repro.util.units import MB, transfer_rate

#: Transfer size of the campaign ("download and upload 2 MB files").
MEASUREMENT_FILE_BYTES = 2.0 * MB


@dataclass(frozen=True)
class MeasurementSample:
    """One repetition of a concurrent k-device throughput measurement."""

    location: str
    hour: float
    direction: str
    n_devices: int
    repetition: int
    #: Application-level throughput each device achieved (bits/second).
    per_device_bps: Tuple[float, ...]
    #: Base station each device was attached to, index-aligned.
    stations: Tuple[str, ...]

    @property
    def aggregate_bps(self) -> float:
        """Sum of per-device throughputs — the Fig. 3 y-axis."""
        return sum(self.per_device_bps)


def _run_concurrent_transfers(
    network: FluidNetwork, paths: Sequence[NetworkPath], file_bytes: float
) -> List[float]:
    """Start one transfer per path simultaneously; return durations."""
    durations: List[Optional[float]] = [None] * len(paths)
    start = network.time

    def make_callback(index: int) -> Callable[[Flow, float], None]:
        def complete(flow: Flow, now: float) -> None:
            durations[index] = now - start

        return complete

    for index, path in enumerate(paths):
        delay = path.start_delay(start, fresh_connection=True)
        network.add_flow(
            Flow(
                file_bytes,
                path.links,
                on_complete=make_callback(index),
                label=f"measure:{path.name}",
            ),
            delay=delay,
        )
    network.run()
    missing = [i for i, d in enumerate(durations) if d is None]
    if missing:
        raise RuntimeError(
            f"measurement transfers {missing} never completed "
            "(dead cellular path?)"
        )
    return [float(d) for d in durations]


def measure_cluster_throughput(
    location: LocationProfile,
    n_devices: int,
    direction: str = "down",
    hour: Optional[float] = None,
    repetitions: int = 4,
    file_bytes: float = MEASUREMENT_FILE_BYTES,
    seed: int = 0,
) -> List[MeasurementSample]:
    """Measure aggregate throughput with ``n_devices`` active at once.

    Mirrors the campaign: all devices transfer a ``file_bytes`` file in
    parallel over their 3G interfaces; ``repetitions`` back-to-back rounds
    are taken (the paper repeats each measurement four times). Throughput
    per device is application-level (includes radio acquisition on the
    first round).
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if direction not in ("down", "up"):
        raise ValueError(f"direction must be 'down' or 'up', got {direction}")
    if hour is None:
        hour = location.measurement_hour
    household = Household(
        location,
        HouseholdConfig(n_phones=n_devices, seed=seed),
        start_time=hour * 3600.0,
    )
    paths = household.cellular_only_paths(
        direction_down=(direction == "down"), n_phones=n_devices
    )
    stations = tuple(
        phone.station.name for phone in household.phones[:n_devices]
    )
    samples: List[MeasurementSample] = []
    for repetition in range(repetitions):
        durations = _run_concurrent_transfers(
            household.network, paths, file_bytes
        )
        samples.append(
            MeasurementSample(
                location=location.name,
                hour=hour,
                direction=direction,
                n_devices=n_devices,
                repetition=repetition,
                per_device_bps=tuple(
                    transfer_rate(file_bytes, d) for d in durations
                ),
                stations=stations,
            )
        )
    return samples
