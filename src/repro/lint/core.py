"""The repro-lint framework: findings, rules, registry, engine.

The reproduction's correctness rests on conventions nothing in the
language enforces — every stochastic component draws from a seeded
stream, every bytes<->bits conversion goes through
:mod:`repro.util.units`, every experiment module honours the registry
contract. This module is the machinery that turns those conventions
into checkable rules:

* :class:`Finding` — one violation, anchored to a file/line/column;
* :class:`Rule` — a named check over one module's AST;
* a rule registry mirroring the experiment registry
  (:func:`rule` decorator, :func:`all_rules`, :func:`get_rule`);
* per-line suppression via ``# repro-lint: disable=RL001[,RL002]``
  (or a bare ``disable`` to silence every rule on that line);
* :func:`lint_source` / :func:`lint_paths` — the engine that parses,
  scopes and runs every selected rule.

The domain rules themselves live in :mod:`repro.lint.rules`; reporters
in :mod:`repro.lint.reporters`; the console entry point in
:mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "DuplicateRuleError",
    "Finding",
    "LintError",
    "LintRun",
    "ModuleContext",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "repro_relative_parts",
    "rule",
    "select_rules",
]

#: Code used for files the engine cannot parse at all.
PARSE_ERROR_CODE = "RL000"


class LintError(Exception):
    """Base class for lint framework failures."""


class DuplicateRuleError(LintError):
    """Two rules tried to register the same code."""


class UnknownRuleError(LintError):
    """Lookup or selection of a code nothing registered."""

    def __init__(self, code: str, available: Tuple[str, ...]):
        self.code = code
        self.available = available
        super().__init__(
            f"unknown rule {code!r}; available: " + ", ".join(available)
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record (one element of ``--format json`` output)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    source: str
    tree: ast.Module
    #: Path parts relative to the ``repro`` package root (empty tuple
    #: when the file is not under a ``repro`` directory); rules use this
    #: for scoping so the checker behaves the same from any CWD.
    rel_parts: Tuple[str, ...] = ()

    def finding(
        self, code: str, message: str, node: ast.AST
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=code,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class Rule:
    """One named invariant check over a module's AST.

    Subclasses set :attr:`code`, :attr:`title` and :attr:`rationale`
    (all surfaced by ``repro-lint --list-rules`` and the README), scope
    themselves via :meth:`applies_to`, and yield findings from
    :meth:`check`. Rules are stateless: one instance serves every file.
    """

    #: Short identifier, ``RL`` + three digits.
    code: str = "RL???"
    #: One-line summary of what the rule forbids.
    title: str = ""
    #: Why the invariant matters for the reproduction.
    rationale: str = ""

    def applies_to(self, context: ModuleContext) -> bool:
        """Whether this rule runs on the module at all (path scoping)."""
        return True

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every violation found in ``context.tree``."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass by its code."""
    instance = cls()
    existing = _REGISTRY.get(instance.code)
    if existing is not None:
        raise DuplicateRuleError(
            f"rule code {instance.code!r} registered twice "
            f"({type(existing).__name__} and {cls.__name__})"
        )
    _REGISTRY[instance.code] = instance
    return cls


def _ensure_rules_loaded() -> None:
    # Import-driven registration, like the experiment registry: the
    # domain rules register when their module is first imported.
    import repro.lint.rules  # noqa: F401


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    _ensure_rules_loaded()
    return tuple(
        _REGISTRY[code] for code in sorted(_REGISTRY)
    )


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``; raises UnknownRuleError."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise UnknownRuleError(
            code, tuple(sorted(_REGISTRY))
        ) from None


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[Rule, ...]:
    """The rule set after ``--select`` / ``--ignore`` filtering."""
    chosen: Iterable[Rule]
    if select:
        chosen = tuple(get_rule(code) for code in select)
    else:
        chosen = all_rules()
    if ignore:
        dropped = {get_rule(code).code for code in ignore}
        chosen = tuple(r for r in chosen if r.code not in dropped)
    return tuple(chosen)


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+?))?\s*(?:#|$)"
)


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions from ``# repro-lint: disable=...`` comments.

    Returns ``{line_number: codes}`` where ``codes`` is the set of
    suppressed rule codes, or ``None`` for a bare ``disable`` that
    silences every rule on that line. Line numbers are 1-based.
    """
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = None
        else:
            parsed = {
                code.strip() for code in codes.split(",") if code.strip()
            }
            previous = suppressions.get(lineno, set())
            if previous is None:
                continue
            suppressions[lineno] = previous | parsed
    return suppressions


def _suppressed(
    finding: Finding, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = suppressions.get(finding.line, set())
    return codes is None or finding.code in (codes or ())


# ---------------------------------------------------------------------------
# Path scoping
# ---------------------------------------------------------------------------


def repro_relative_parts(path: str) -> Tuple[str, ...]:
    """Path parts relative to the last ``repro`` directory in ``path``.

    ``src/repro/core/scheduler/runner.py`` becomes
    ``("core", "scheduler", "runner.py")``. Files not under a ``repro``
    directory return an empty tuple (rules then fall back to matching
    the raw path, so fixtures with synthetic paths still scope).
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return ()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one module's source."""
    active = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                message=f"cannot parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    context = ModuleContext(
        path=path,
        source=source,
        tree=tree,
        rel_parts=repro_relative_parts(path),
    )
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for active_rule in active:
        if not active_rule.applies_to(context):
            continue
        for finding in active_rule.check(context):
            if not _suppressed(finding, suppressions):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``*.py`` file under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


@dataclass
class LintRun:
    """Outcome of linting a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        """Finding count per rule code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    on_file: Optional[Callable[[Path], None]] = None,
) -> LintRun:
    """Lint every Python file under ``paths``."""
    run = LintRun()
    for file_path in iter_python_files(paths):
        if on_file is not None:
            on_file(file_path)
        run.files_checked += 1
        source = file_path.read_text(encoding="utf-8")
        run.findings.extend(
            lint_source(source, path=str(file_path), rules=rules)
        )
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return run
