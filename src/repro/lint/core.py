"""The repro-lint framework: findings, rules, registry, engine.

The reproduction's correctness rests on conventions nothing in the
language enforces — every stochastic component draws from a seeded
stream, every bytes<->bits conversion goes through
:mod:`repro.util.units`, every experiment module honours the registry
contract. This module is the machinery that turns those conventions
into checkable rules:

* :class:`Finding` — one violation, anchored to a file/line/column;
* :class:`Rule` — a named check over one module's AST;
* a rule registry mirroring the experiment registry
  (:func:`rule` decorator, :func:`all_rules`, :func:`get_rule`);
* per-line suppression via ``# repro-lint: disable=RL001[,RL002]``
  (or a bare ``disable`` to silence every rule on that line);
* :func:`lint_source` / :func:`lint_paths` — the engine that parses,
  scopes and runs every selected rule.

The domain rules themselves live in :mod:`repro.lint.rules`; reporters
in :mod:`repro.lint.reporters`; the console entry point in
:mod:`repro.lint.cli`.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:
    from repro.lint.project import ProjectContext

__all__ = [
    "DuplicateRuleError",
    "Finding",
    "LintError",
    "LintRun",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "module_root",
    "parse_suppressions",
    "repro_relative_parts",
    "rule",
    "select_rules",
]

#: Code used for files the engine cannot parse at all.
PARSE_ERROR_CODE = "RL000"
#: Code used for `--warn-unused-suppressions` findings.
UNUSED_SUPPRESSION_CODE = "RL099"


class LintError(Exception):
    """Base class for lint framework failures."""


class DuplicateRuleError(LintError):
    """Two rules tried to register the same code."""


class UnknownRuleError(LintError):
    """Lookup or selection of a code nothing registered."""

    def __init__(self, code: str, available: Tuple[str, ...]) -> None:
        self.code = code
        self.available = available
        super().__init__(
            f"unknown rule {code!r}; available: " + ", ".join(available)
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def location(self) -> str:
        """``path:line:col`` — the clickable anchor of the finding."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record (one element of ``--format json`` output)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    source: str
    tree: ast.Module
    #: Path parts relative to the ``repro`` package root (empty tuple
    #: when the file is not under a ``repro`` directory); rules use this
    #: for scoping so the checker behaves the same from any CWD.
    rel_parts: Tuple[str, ...] = ()
    #: For files outside the ``repro`` package: the top-level tree they
    #: belong to (``"tests"`` / ``"benchmarks"``), else ``""``. Rules
    #: that run over the test suite scope on this.
    root: str = ""

    def finding(
        self, code: str, message: str, node: ast.AST
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=code,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class Rule:
    """One named invariant check over a module's AST.

    Subclasses set :attr:`code`, :attr:`title` and :attr:`rationale`
    (all surfaced by ``repro-lint --list-rules`` and the README), scope
    themselves via :meth:`applies_to`, and yield findings from
    :meth:`check`. Rules are stateless: one instance serves every file.
    """

    #: Short identifier, ``RL`` + three digits.
    code: str = "RL???"
    #: One-line summary of what the rule forbids.
    title: str = ""
    #: Why the invariant matters for the reproduction.
    rationale: str = ""
    #: Human-readable scope (packages/paths the rule runs over),
    #: surfaced by ``--list-rules`` and the README catalogue.
    scope: str = ""
    #: Project-level rules run once over the whole tree instead of
    #: per module; see :class:`ProjectRule`.
    project_level: bool = False

    def applies_to(self, context: ModuleContext) -> bool:
        """Whether this rule runs on the module at all (path scoping)."""
        return True

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every violation found in ``context.tree``."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that queries the whole-tree :class:`ProjectContext`.

    Project rules run once per lint invocation, after every module has
    been parsed, and see the cross-module symbol table, call graph and
    function summaries built by :mod:`repro.lint.project`. Their
    findings still anchor to a file/line and still honour that line's
    ``# repro-lint: disable=`` suppressions.
    """

    project_level = True

    def applies_to(self, context: ModuleContext) -> bool:
        """Project rules never run in the per-module pass."""
        return False

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Project rules have no per-module check."""
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield every violation found across the project."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` subclass by its code."""
    instance = cls()
    existing = _REGISTRY.get(instance.code)
    if existing is not None:
        raise DuplicateRuleError(
            f"rule code {instance.code!r} registered twice "
            f"({type(existing).__name__} and {cls.__name__})"
        )
    _REGISTRY[instance.code] = instance
    return cls


def _ensure_rules_loaded() -> None:
    # Import-driven registration, like the experiment registry: the
    # domain rules register when their module is first imported.
    import repro.lint.project_rules  # noqa: F401
    import repro.lint.rules  # noqa: F401


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    _ensure_rules_loaded()
    return tuple(
        _REGISTRY[code] for code in sorted(_REGISTRY)
    )


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``; raises UnknownRuleError."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise UnknownRuleError(
            code, tuple(sorted(_REGISTRY))
        ) from None


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[Rule, ...]:
    """The rule set after ``--select`` / ``--ignore`` filtering."""
    chosen: Iterable[Rule]
    if select:
        chosen = tuple(get_rule(code) for code in select)
    else:
        chosen = all_rules()
    if ignore:
        dropped = {get_rule(code).code for code in ignore}
        chosen = tuple(r for r in chosen if r.code not in dropped)
    return tuple(chosen)


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+?))?\s*(?:#|$)"
)


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions from ``# repro-lint: disable=...`` comments.

    Returns ``{line_number: codes}`` where ``codes`` is the set of
    suppressed rule codes, or ``None`` for a bare ``disable`` that
    silences every rule on that line. Line numbers are 1-based.
    """
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = None
        else:
            parsed = {
                code.strip() for code in codes.split(",") if code.strip()
            }
            previous = suppressions.get(lineno, set())
            if previous is None:
                continue
            suppressions[lineno] = previous | parsed
    return suppressions


def _suppressed(
    finding: Finding, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = suppressions.get(finding.line, set())
    return codes is None or finding.code in (codes or ())


# ---------------------------------------------------------------------------
# Path scoping
# ---------------------------------------------------------------------------


def repro_relative_parts(path: str) -> Tuple[str, ...]:
    """Path parts relative to the last ``repro`` directory in ``path``.

    ``src/repro/core/scheduler/runner.py`` becomes
    ``("core", "scheduler", "runner.py")``. Files not under a ``repro``
    directory return an empty tuple (rules then fall back to matching
    the raw path, so fixtures with synthetic paths still scope).
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return ()


def module_root(path: str) -> str:
    """``"tests"`` / ``"benchmarks"`` for files under those trees.

    Only meaningful for files *not* under a ``repro`` directory (the
    package's own files scope via :func:`repro_relative_parts`); any
    other non-repro file returns ``""``.
    """
    parts = Path(path).parts
    if "repro" in parts:
        return ""
    for part in parts:
        if part in ("tests", "benchmarks"):
            return part
    return ""


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _parse_context(
    source: str, path: str
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            code=PARSE_ERROR_CODE,
            message=f"cannot parse: {exc.msg}",
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
        )
    return (
        ModuleContext(
            path=path,
            source=source,
            tree=tree,
            rel_parts=repro_relative_parts(path),
            root=module_root(path),
        ),
        None,
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one module's source.

    Project-level rules are skipped here — a single module has no
    project; use :func:`lint_paths` or :func:`lint_sources` for those.
    """
    active = tuple(rules) if rules is not None else all_rules()
    context, parse_error = _parse_context(source, path)
    if context is None:
        return [parse_error] if parse_error is not None else []
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for active_rule in active:
        if active_rule.project_level:
            continue
        if not active_rule.applies_to(context):
            continue
        for finding in active_rule.check(context):
            if not _suppressed(finding, suppressions):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``*.py`` file under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


@dataclass
class LintRun:
    """Outcome of linting a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Wall-clock seconds spent per rule code (project rules included;
    #: the shared project-graph build is the ``"project-graph"`` key).
    rule_timings: Dict[str, float] = field(default_factory=dict)
    #: Total wall-clock seconds for the whole run.
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        """Finding count per rule code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


class _SuppressionLedger:
    """Which suppression comments actually suppressed something."""

    def __init__(self) -> None:
        #: path -> {line: comment codes (None = blanket)}
        self.declared: Dict[str, Dict[int, Optional[Set[str]]]] = {}
        #: path -> {line: codes that matched a finding there}
        self.used: Dict[str, Dict[int, Set[str]]] = {}

    def declare(
        self, path: str, suppressions: Dict[int, Optional[Set[str]]]
    ) -> None:
        self.declared[path] = suppressions

    def filter(self, finding: Finding) -> bool:
        """True (and record the hit) when ``finding`` is suppressed."""
        suppressions = self.declared.get(finding.path, {})
        if not _suppressed(finding, suppressions):
            return False
        self.used.setdefault(finding.path, {}).setdefault(
            finding.line, set()
        ).add(finding.code)
        return True

    def unused_findings(
        self, active: Sequence[Rule]
    ) -> Iterator[Finding]:
        """RL099 findings for comments that suppressed nothing.

        A coded suppression is only judged when its rule actually ran;
        a blanket ``disable`` is only judged when the *full* registry
        ran (any narrower selection could be what it exists for).
        """
        active_codes = {r.code for r in active}
        full_run = active_codes >= {r.code for r in all_rules()}
        for path in sorted(self.declared):
            for line, codes in sorted(self.declared[path].items()):
                used_here = self.used.get(path, {}).get(line, set())
                if codes is None:
                    if full_run and not used_here:
                        yield Finding(
                            code=UNUSED_SUPPRESSION_CODE,
                            message=(
                                "blanket `# repro-lint: disable` "
                                "suppresses nothing on this line; "
                                "delete it"
                            ),
                            path=path,
                            line=line,
                        )
                    continue
                for code in sorted(codes):
                    if code in active_codes and code not in used_here:
                        yield Finding(
                            code=UNUSED_SUPPRESSION_CODE,
                            message=(
                                f"suppression for {code} matches no "
                                "finding on this line; delete it"
                            ),
                            path=path,
                            line=line,
                        )


def _lint_modules(
    items: Iterable[Tuple[str, str]],
    rules: Optional[Sequence[Rule]] = None,
    on_file: Optional[Callable[[Path], None]] = None,
    warn_unused_suppressions: bool = False,
) -> LintRun:
    started = time.perf_counter()
    active = tuple(rules) if rules is not None else all_rules()
    module_rules = tuple(r for r in active if not r.project_level)
    project_rules = tuple(r for r in active if r.project_level)
    run = LintRun()
    ledger = _SuppressionLedger()
    contexts: List[ModuleContext] = []
    timings: Dict[str, float] = {}
    for path, source in items:
        if on_file is not None:
            on_file(Path(path))
        run.files_checked += 1
        context, parse_error = _parse_context(source, path)
        if context is None:
            if parse_error is not None:
                run.findings.append(parse_error)
            continue
        contexts.append(context)
        ledger.declare(path, parse_suppressions(source))
        for active_rule in module_rules:
            rule_started = time.perf_counter()
            if active_rule.applies_to(context):
                for finding in active_rule.check(context):
                    if not ledger.filter(finding):
                        run.findings.append(finding)
            timings[active_rule.code] = (
                timings.get(active_rule.code, 0.0)
                + time.perf_counter()
                - rule_started
            )
    if project_rules and contexts:
        from repro.lint.project import ProjectContext

        build_started = time.perf_counter()
        project = ProjectContext.from_contexts(contexts)
        timings["project-graph"] = time.perf_counter() - build_started
        for active_rule in project_rules:
            rule_started = time.perf_counter()
            for finding in active_rule.check_project(project):
                if not ledger.filter(finding):
                    run.findings.append(finding)
            timings[active_rule.code] = (
                timings.get(active_rule.code, 0.0)
                + time.perf_counter()
                - rule_started
            )
    if warn_unused_suppressions:
        # Meta-findings bypass the suppression filter: a blanket
        # `disable` must not be able to silence the warning that it is
        # itself dead.
        run.findings.extend(ledger.unused_findings(active))
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    run.rule_timings = dict(sorted(timings.items()))
    run.duration_s = time.perf_counter() - started
    return run


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    on_file: Optional[Callable[[Path], None]] = None,
    warn_unused_suppressions: bool = False,
) -> LintRun:
    """Lint every Python file under ``paths``."""
    return _lint_modules(
        (
            (str(file_path), file_path.read_text(encoding="utf-8"))
            for file_path in iter_python_files(paths)
        ),
        rules=rules,
        on_file=on_file,
        warn_unused_suppressions=warn_unused_suppressions,
    )


def lint_sources(
    files: Mapping[str, str],
    rules: Optional[Sequence[Rule]] = None,
    warn_unused_suppressions: bool = False,
) -> LintRun:
    """Lint an in-memory set of modules (path -> source).

    The project-level rules see all of ``files`` as one tree, exactly
    as :func:`lint_paths` would — this is the fixture entry point for
    multi-module tests.
    """
    return _lint_modules(
        sorted(files.items()),
        rules=rules,
        warn_unused_suppressions=warn_unused_suppressions,
    )
