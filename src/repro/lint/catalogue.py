"""Generated rule catalogue: the README's static-analysis table.

The README renders the full rule registry as one markdown table —
code, invariant, scope, per-module vs project level, and how many
justified suppressions the ``src/`` tree currently carries. Generating
it from the registry (and asserting non-drift in ``tests/test_docs.py``,
the same pattern as the obs schema tables) means a new rule or a new
suppression cannot land without the documentation following.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.lint.core import (
    all_rules,
    iter_python_files,
    parse_suppressions,
)

__all__ = ["count_suppressions", "rule_table"]


def count_suppressions(paths: Sequence[str]) -> Dict[str, int]:
    """Per-rule count of ``# repro-lint: disable=`` comments under ``paths``.

    A blanket ``disable`` (no codes) is counted under ``"*"``. Only the
    comments are counted, not whether they currently match a finding —
    the ``--warn-unused-suppressions`` audit covers that.
    """
    counts: Dict[str, int] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        for codes in parse_suppressions(source).values():
            if codes is None:
                counts["*"] = counts.get("*", 0) + 1
            else:
                for code in codes:
                    counts[code] = counts.get(code, 0) + 1
    return dict(sorted(counts.items()))


def rule_table(
    suppression_counts: Optional[Mapping[str, int]] = None,
) -> str:
    """The rule catalogue as a markdown table.

    ``suppression_counts`` maps rule code to the number of justified
    inline suppressions (from :func:`count_suppressions`); rules absent
    from the mapping render as 0.
    """
    counts = suppression_counts or {}
    lines = [
        "| Code | Invariant | Scope | Level | Suppressions |",
        "| --- | --- | --- | --- | --- |",
    ]
    for lint_rule in all_rules():
        level = "project" if lint_rule.project_level else "module"
        lines.append(
            f"| {lint_rule.code} "
            f"| {lint_rule.title} "
            f"| {lint_rule.scope} "
            f"| {level} "
            f"| {counts.get(lint_rule.code, 0)} |"
        )
    return "\n".join(lines)
