"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/                      # text report, exit 1 on findings
    repro-lint src/ --format json        # CI-friendly payload
    repro-lint src/ --select RL001,RL004 # run a subset
    repro-lint src/ --ignore RL005
    repro-lint src/ --warn-unused-suppressions
    repro-lint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule, missing
path) — the shared :mod:`repro.util.clitools` contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.core import UnknownRuleError, lint_paths, select_rules
from repro.lint.reporters import render_json, render_rule_list, render_text
from repro.util.clitools import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    add_format_argument,
    cli_error,
    split_codes,
)

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-lint argument parser (shared clitools conventions)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the 3GOL reproduction "
            "(determinism, units, registry contract, exception hygiene, "
            "float equality, wire-error taxonomy, and the cross-module "
            "seed/obs/authority/escape analyses)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse *.py)",
    )
    add_format_argument(parser)
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        help=(
            "flag `# repro-lint: disable=` comments that no longer "
            "suppress anything (reported as RL099)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run repro-lint; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        return cli_error("repro-lint", "no paths given")
    try:
        rules = select_rules(
            select=split_codes(args.select),
            ignore=split_codes(args.ignore),
        )
    except UnknownRuleError as exc:
        return cli_error("repro-lint", str(exc))
    try:
        run = lint_paths(
            args.paths,
            rules=rules,
            warn_unused_suppressions=args.warn_unused_suppressions,
        )
    except OSError as exc:
        return cli_error("repro-lint", str(exc))
    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run))
    return EXIT_CLEAN if run.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover — exercised via tests
    sys.exit(main())
