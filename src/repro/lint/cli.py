"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/                      # text report, exit 1 on findings
    repro-lint src/ --format json        # CI-friendly payload
    repro-lint src/ --select RL001,RL004 # run a subset
    repro-lint src/ --ignore RL005
    repro-lint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule, missing
path).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.core import UnknownRuleError, lint_paths, select_rules
from repro.lint.reporters import render_json, render_rule_list, render_text
from repro.util.clitools import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    cli_error,
)

__all__ = ["main"]


def _split_codes(value: Optional[str]) -> List[str]:
    if not value:
        return []
    return [code.strip() for code in value.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the 3GOL reproduction "
            "(determinism, units, registry contract, exception hygiene, "
            "float equality, wire-error taxonomy)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        return cli_error("repro-lint", "no paths given")
    try:
        rules = select_rules(
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except UnknownRuleError as exc:
        return cli_error("repro-lint", str(exc))
    try:
        run = lint_paths(args.paths, rules=rules)
    except OSError as exc:
        return cli_error("repro-lint", str(exc))
    if args.format == "json":
        print(render_json(run))
    else:
        print(render_text(run))
    return EXIT_CLEAN if run.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover — exercised via tests
    sys.exit(main())
