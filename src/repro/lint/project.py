"""Project-level analysis: summaries and the :class:`ProjectContext`.

Where :class:`~repro.lint.core.ModuleContext` gives a rule one module's
AST, :class:`ProjectContext` gives it the whole ``src/repro`` tree at
once: a symbol table and call graph (:mod:`repro.lint.graph`), plus a
lightweight intraprocedural summary per function —

* which RNGs it constructs and where their seeds come from
  (:class:`RngSite` with a :class:`Provenance`), the raw material of
  RL008's seed-provenance check;
* which string literals reach :class:`Instrumentation` emit sites
  (:class:`EmitSite`), checked against the obs catalogue by RL009;
* which ``self`` attributes its methods mutate (RL010's authority
  discipline);
* which exception types escape it after local ``try`` filtering
  (:meth:`ProjectContext.escapes`), the call-graph truth behind RL011.

Everything is conservative: unresolved names, unknown receiver types
and opaque expressions degrade to "don't know", and the rules treat
"don't know" as clean.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.graph import (
    CallGraph,
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    RaiseSite,
    SymbolTable,
    annotation_type_names,
    module_name_from_rel_parts,
)

__all__ = [
    "EmitSite",
    "EscapedRaise",
    "FunctionSummary",
    "ObsCatalogue",
    "ProjectContext",
    "Provenance",
    "RngSite",
]


# ---------------------------------------------------------------------------
# Seed provenance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Provenance:
    """Where a seed expression's value comes from.

    ``kind`` is one of ``"seeded"`` (derived from constants or an
    RngFactory stream), ``"unseeded"`` (literal ``None`` / missing /
    OS entropy), ``"param"`` (flows in through the named parameter —
    the obligation moves to the callers), or ``"unknown"``.
    """

    kind: str
    param: str = ""

    @classmethod
    def seeded(cls) -> "Provenance":
        """Deterministically derived seed."""
        return cls("seeded")

    @classmethod
    def unseeded(cls) -> "Provenance":
        """Provably OS entropy (``None`` or no seed at all)."""
        return cls("unseeded")

    @classmethod
    def unknown(cls) -> "Provenance":
        """Opaque expression; the rules treat this as clean."""
        return cls("unknown")

    @classmethod
    def from_param(cls, name: str) -> "Provenance":
        """Value flows in through parameter ``name``."""
        return cls("param", name)


#: Callable terminal names that yield RngFactory-derived (seeded) values.
_DERIVE_CALLS = frozenset({"derive", "derive_seed", "child"})
#: Pure numeric combinators that preserve their arguments' provenance.
_COMBINING_CALLS = frozenset(
    {"int", "float", "abs", "min", "max", "hash", "crc32", "adler32", "len"}
)

#: RNG constructor terminal names and how their seed argument is found.
_RNG_CONSTRUCTORS = frozenset({"default_rng", "Random", "RandomState"})
#: Module prefixes an RNG constructor must hang off (or resolve to).
_RNG_MODULES = ("random", "np.random", "numpy.random")


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _terminal(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@dataclass(frozen=True)
class RngSite:
    """One RNG construction and the provenance of its seed."""

    node: ast.Call
    #: The constructor spelled at the site (``default_rng``, ``Random``).
    kind: str
    provenance: Provenance


@dataclass(frozen=True)
class EmitSite:
    """One obs emit call: ``obs.event("txn.begin", ...)`` and friends."""

    node: ast.Call
    #: ``event`` / ``count`` / ``gauge`` / ``observe``.
    method: str
    #: The event/metric name if statically known, else ``None``.
    name: Optional[str]
    #: Keyword-argument names at the site (``**kwargs`` excluded).
    keywords: Tuple[str, ...]
    #: Whether the call splats ``**kwargs`` (field checks are skipped).
    has_star_kwargs: bool


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    info: FunctionInfo
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    rng_sites: List[RngSite] = field(default_factory=list)
    emit_sites: List[EmitSite] = field(default_factory=list)
    #: ``self`` attributes directly mutated (assign/augassign/container).
    mutated_attrs: Set[str] = field(default_factory=set)
    #: Terminal names of ``self.m(...)`` calls (within-class closure).
    self_calls: Set[str] = field(default_factory=set)


#: Container methods that mutate their receiver in place.
_MUTATING_CONTAINER_METHODS = frozenset(
    {
        "append", "add", "remove", "pop", "clear", "update", "extend",
        "insert", "setdefault", "discard", "popitem",
    }
)

#: Constructor-ish methods exempt from the RL010 mutator set: building
#: your own tracker is not touching someone else's authority.
_CTOR_METHODS = frozenset({"__init__", "__post_init__"})


# ---------------------------------------------------------------------------
# The per-function walker
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """One pass over a function body, building its summary."""

    def __init__(
        self,
        project: "ProjectContext",
        module: ModuleInfo,
        info: FunctionInfo,
    ) -> None:
        self.project = project
        self.module = module
        self.info = info
        self.summary = FunctionSummary(info=info)
        self.class_info = (
            project.class_by_qualname.get(info.class_qualname)
            if info.class_qualname
            else None
        )
        #: Local simple assignments: name -> last value expression.
        self.local_assigns: Dict[str, ast.expr] = {}
        #: Local type environment: name -> type-name identifiers.
        self.local_types: Dict[str, FrozenSet[str]] = {}
        #: Functions defined inside this body, resolvable by bare name.
        self.local_functions: Dict[str, FunctionInfo] = {}
        self._seed_env()

    def _seed_env(self) -> None:
        node = self.info.node
        args = node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                self.local_types[arg.arg] = annotation_type_names(
                    arg.annotation
                )

    # ------------------------------------------------------------------
    # Walk
    # ------------------------------------------------------------------
    def walk(self) -> FunctionSummary:
        """Build and return the function's summary."""
        body = self.info.node.body  # type: ignore[attr-defined]
        # Pre-register nested defs so forward references resolve.
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_functions[stmt.name] = FunctionInfo(
                    qualname=f"{self.info.qualname}.<locals>.{stmt.name}",
                    module=self.module.name,
                    node=stmt,
                )
        for stmt in body:
            self._visit(stmt, caught=frozenset(), reraises=frozenset())
        return self.summary

    def _handler_names(self, handler: ast.ExceptHandler) -> FrozenSet[str]:
        if handler.type is None:
            return frozenset({"BaseException"})
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        return frozenset(
            _terminal(node) for node in nodes if _terminal(node)
        )

    def _handler_catches(self, handler: ast.ExceptHandler) -> bool:
        # A handler whose body unconditionally re-raises (top-level bare
        # ``raise``) does not remove anything from the escape set.
        return not any(
            isinstance(stmt, ast.Raise) and stmt.exc is None
            for stmt in handler.body
        )

    def _visit(
        self,
        node: ast.AST,
        caught: FrozenSet[str],
        reraises: FrozenSet[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are summarized on their own; their bodies are
            # not part of this function's behaviour.
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Try):
            catching: Set[str] = set()
            for handler in node.handlers:
                if self._handler_catches(handler):
                    catching |= self._handler_names(handler)
            body_caught = caught | frozenset(catching)
            for stmt in node.body:
                self._visit(stmt, body_caught, reraises)
            for handler in node.handlers:
                names = self._handler_names(handler)
                for stmt in handler.body:
                    self._visit(stmt, caught, names)
            for stmt in [*node.orelse, *node.finalbody]:
                self._visit(stmt, caught, reraises)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node, caught, reraises)
        elif isinstance(node, ast.Call):
            self._record_call(node, caught)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._record_assignment(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, caught, reraises)

    # ------------------------------------------------------------------
    # Raises
    # ------------------------------------------------------------------
    def _record_raise(
        self,
        node: ast.Raise,
        caught: FrozenSet[str],
        reraises: FrozenSet[str],
    ) -> None:
        if node.exc is None:
            self.summary.raises.append(
                RaiseSite(name="", node=node, caught=caught,
                          reraises=reraises)
            )
            return
        raised = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
        name = _terminal(raised)
        if name:
            self.summary.raises.append(
                RaiseSite(name=name, node=node, caught=caught)
            )

    # ------------------------------------------------------------------
    # Assignments (types + constant propagation + mutation)
    # ------------------------------------------------------------------
    def _record_assignment(self, node: ast.AST) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
            if isinstance(node.target, ast.Name):
                self.local_types[node.target.id] = annotation_type_names(
                    node.annotation
                )
        else:  # AugAssign
            targets, value = [node.target], None  # type: ignore[attr-defined]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.summary.mutated_attrs.add(target.attr)
            elif isinstance(target, ast.Subscript):
                base = target.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    self.summary.mutated_attrs.add(base.attr)
            elif isinstance(target, ast.Name) and value is not None:
                self.local_assigns[target.id] = value
                inferred = self.infer_type_names(value)
                if inferred:
                    self.local_types.setdefault(target.id, inferred)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _record_call(self, node: ast.Call, caught: FrozenSet[str]) -> None:
        callee = self._resolve_callee(node.func)
        self.summary.calls.append(
            CallSite(
                caller=self.info.qualname,
                callee=callee,
                node=node,
                caught=caught,
            )
        )
        self._maybe_rng_site(node)
        self._maybe_emit_site(node)
        self._maybe_self_mutation(node)

    def _maybe_self_mutation(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if (
            isinstance(base, ast.Name)
            and base.id == "self"
        ):
            self.summary.self_calls.add(func.attr)
        if func.attr in _MUTATING_CONTAINER_METHODS:
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                self.summary.mutated_attrs.add(base.attr)

    def _resolve_callee(self, func: ast.expr, _depth: int = 0) -> str:
        if _depth > 6:
            return ""
        table = self.project.symbols
        if isinstance(func, ast.Name):
            local = self.local_functions.get(func.id)
            if local is not None:
                return local.qualname
            resolved = table.resolve(self.module, func.id)
            if resolved is None:
                return ""
            kind, value = resolved
            if kind == "function":
                return value.qualname  # type: ignore[union-attr]
            if kind == "class":
                info = value  # type: ignore[assignment]
                ctor = info.methods.get("__init__")  # type: ignore[union-attr]
                return (
                    ctor.qualname
                    if ctor is not None
                    else f"{info.qualname}.__init__"  # type: ignore[union-attr]
                )
            return ""
        if not isinstance(func, ast.Attribute):
            return ""
        # self.method() — own class first, then project ancestors.
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            return self._resolve_self_method(func.attr)
        # module-qualified call (alias.helper, package.module.helper)
        dotted = _dotted(func)
        if dotted:
            resolved = table.resolve_dotted(self.module, dotted)
            if resolved is not None and resolved[0] == "function":
                return resolved[1].qualname  # type: ignore[union-attr]
        # typed-receiver call: resolve through the inferred class.
        receiver_types = self.infer_type_names(func.value, _depth + 1)
        for class_name in receiver_types:
            info = self.project.symbols.find_class(class_name)
            if info is not None and func.attr in info.methods:
                return info.methods[func.attr].qualname
        return ""

    def _resolve_self_method(self, name: str) -> str:
        info = self.class_info
        seen: Set[str] = set()
        while info is not None and info.qualname not in seen:
            seen.add(info.qualname)
            if name in info.methods:
                return info.methods[name].qualname
            # Follow the first resolvable project base.
            parent: Optional[ClassInfo] = None
            module = self.project.modules.get(info.module)
            if module is not None:
                for base in info.base_nodes:
                    terminal = _terminal(base)
                    resolved = (
                        self.project.symbols.resolve(module, terminal)
                        if terminal
                        else None
                    )
                    if resolved is not None and resolved[0] == "class":
                        parent = resolved[1]  # type: ignore[assignment]
                        break
            info = parent
        return ""

    # ------------------------------------------------------------------
    # RNG sites
    # ------------------------------------------------------------------
    def _maybe_rng_site(self, node: ast.Call) -> None:
        kind = self._rng_constructor_kind(node.func)
        if kind is None:
            return
        if kind == "SystemRandom":
            self.summary.rng_sites.append(
                RngSite(node=node, kind=kind,
                        provenance=Provenance.unseeded())
            )
            return
        seed_expr = self._seed_argument(node)
        provenance = (
            Provenance.unseeded()
            if seed_expr is None
            else self.seed_provenance(seed_expr)
        )
        self.summary.rng_sites.append(
            RngSite(node=node, kind=kind, provenance=provenance)
        )

    def _rng_constructor_kind(self, func: ast.expr) -> Optional[str]:
        terminal = _terminal(func)
        if terminal == "SystemRandom":
            return terminal
        if terminal not in _RNG_CONSTRUCTORS:
            return None
        dotted = _dotted(func)
        if dotted:
            head = dotted.rsplit(".", 1)[0]
            if head.endswith(_RNG_MODULES) or head in (
                "random", "np", "numpy"
            ):
                return terminal
        if isinstance(func, ast.Name):
            # ``from random import Random`` / ``from numpy.random import
            # default_rng`` — resolve the import to be sure.
            imported = self.module.symbol_imports.get(func.id)
            if imported is not None and imported[0].split(".")[0] in (
                "random", "numpy", "np"
            ):
                return terminal
            if terminal == "default_rng":
                return terminal
        return None

    def _seed_argument(self, node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg in ("seed", "entropy", "x"):
                return keyword.value
            if keyword.arg is None:
                # **kwargs might carry a seed; don't guess.
                return keyword.value
        return None

    # ------------------------------------------------------------------
    # Provenance evaluation
    # ------------------------------------------------------------------
    def seed_provenance(
        self, expr: ast.expr, _depth: int = 0
    ) -> Provenance:
        """Provenance of ``expr`` as a seed value (intraprocedural)."""
        if _depth > 8:
            return Provenance.unknown()
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return Provenance.unseeded()
            if isinstance(expr.value, bool):
                return Provenance.seeded()
            if isinstance(expr.value, (int, float, str, bytes)):
                return Provenance.seeded()
            return Provenance.unknown()
        if isinstance(expr, ast.Name):
            return self._name_provenance(expr.id, _depth)
        if isinstance(expr, ast.Attribute):
            return self._attribute_provenance(expr, _depth)
        if isinstance(expr, ast.Call):
            return self._call_provenance(expr, _depth)
        if isinstance(expr, ast.BinOp):
            return self._combine(
                [expr.left, expr.right], _depth
            )
        if isinstance(expr, ast.UnaryOp):
            return self.seed_provenance(expr.operand, _depth + 1)
        if isinstance(expr, ast.BoolOp):
            return self._combine(list(expr.values), _depth)
        if isinstance(expr, ast.IfExp):
            return self._combine([expr.body, expr.orelse], _depth)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return self._combine(list(expr.elts), _depth)
        return Provenance.unknown()

    def _combine(
        self, exprs: Sequence[ast.expr], depth: int
    ) -> Provenance:
        provenances = [
            self.seed_provenance(expr, depth + 1) for expr in exprs
        ]
        if any(p.kind == "unknown" for p in provenances):
            return Provenance.unknown()
        for provenance in provenances:
            if provenance.kind == "param":
                return provenance
        if any(p.kind == "unseeded" for p in provenances):
            return Provenance.unseeded()
        return Provenance.seeded()

    def _name_provenance(self, name: str, depth: int) -> Provenance:
        if name in self.info.param_names():
            return Provenance.from_param(name)
        assigned = self.local_assigns.get(name)
        if assigned is not None:
            return self.seed_provenance(assigned, depth + 1)
        module_value = self.module.assignments.get(name)
        if module_value is not None and isinstance(
            module_value, ast.Constant
        ):
            return self.seed_provenance(module_value, depth + 1)
        return Provenance.unknown()

    def _attribute_provenance(
        self, expr: ast.Attribute, depth: int
    ) -> Provenance:
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.class_info is not None
        ):
            param = self.class_info.attr_from_param.get(expr.attr)
            if param is not None:
                # The obligation moves to the *constructor's* callers.
                return Provenance.from_param(f"__ctor__:{param}")
        return Provenance.unknown()

    def _call_provenance(self, expr: ast.Call, depth: int) -> Provenance:
        terminal = _terminal(expr.func)
        if terminal in _DERIVE_CALLS:
            return Provenance.seeded()
        if terminal == "RngFactory":
            if not expr.args and not expr.keywords:
                return Provenance.unseeded()
            return self._combine(
                [*expr.args, *[k.value for k in expr.keywords]], depth
            )
        if terminal == "SeedSequence":
            entropy = None
            if expr.args:
                entropy = expr.args[0]
            for keyword in expr.keywords:
                if keyword.arg == "entropy":
                    entropy = keyword.value
            if entropy is None:
                return Provenance.unseeded()
            return self.seed_provenance(entropy, depth + 1)
        if terminal in _COMBINING_CALLS:
            operands = [*expr.args, *[k.value for k in expr.keywords]]
            if not operands:
                return Provenance.unknown()
            return self._combine(operands, depth)
        if terminal == "spawn_rng":
            if not expr.args and not expr.keywords:
                return Provenance.unseeded()
            return self._combine(
                [*expr.args, *[k.value for k in expr.keywords]], depth
            )
        return Provenance.unknown()

    # ------------------------------------------------------------------
    # Emit sites
    # ------------------------------------------------------------------
    _EMIT_METHODS = frozenset({"event", "count", "gauge", "observe"})

    def _maybe_emit_site(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self._EMIT_METHODS:
            return
        if not self._is_obs_receiver(func.value):
            return
        name = self._literal_name(node)
        keywords = tuple(
            keyword.arg for keyword in node.keywords
            if keyword.arg is not None
        )
        has_star = any(keyword.arg is None for keyword in node.keywords)
        self.summary.emit_sites.append(
            EmitSite(
                node=node,
                method=func.attr,
                name=name,
                keywords=keywords,
                has_star_kwargs=has_star,
            )
        )

    def _is_obs_receiver(self, receiver: ast.expr) -> bool:
        # Module receivers (itertools.count) are never obs handles.
        if isinstance(receiver, ast.Name):
            resolved = self.project.symbols.resolve(
                self.module, receiver.id
            )
            if resolved is not None and resolved[0] == "module":
                return False
        inferred = self.infer_type_names(receiver)
        if "Instrumentation" in inferred:
            return True
        terminal = _terminal(receiver)
        return "obs" in terminal.lower() or terminal == "instrumentation"

    def _literal_name(self, node: ast.Call) -> Optional[str]:
        if not node.args:
            return None
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(
            first.value, str
        ):
            return first.value
        if isinstance(first, ast.Name):
            assigned = self.local_assigns.get(first.id)
            if isinstance(assigned, ast.Constant) and isinstance(
                assigned.value, str
            ):
                return assigned.value
        return None

    # ------------------------------------------------------------------
    # Type inference
    # ------------------------------------------------------------------
    def infer_type_names(
        self, expr: ast.expr, _depth: int = 0
    ) -> FrozenSet[str]:
        """Identifiers naming the plausible types of ``expr``.

        Sources: parameter and local annotations, ``self`` attribute
        types, constructor calls, and resolved callees' return
        annotations. Unknown expressions yield an empty set.
        """
        if _depth > 6:
            return frozenset()
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.class_info is not None:
                return frozenset({self.class_info.name})
            known = self.local_types.get(expr.id)
            if known:
                return known
            assigned = self.local_assigns.get(expr.id)
            if assigned is not None:
                return self.infer_type_names(assigned, _depth + 1)
            return frozenset()
        if isinstance(expr, ast.Attribute):
            base_types = self.infer_type_names(expr.value, _depth + 1)
            out: Set[str] = set()
            for class_name in base_types:
                info = self.project.symbols.find_class(class_name)
                if info is not None:
                    out |= info.attr_type_names.get(
                        expr.attr, frozenset()
                    )
            return frozenset(out)
        if isinstance(expr, ast.Call):
            callee = self._resolve_callee(expr.func, _depth + 1)
            if callee:
                summary_info = self.project.function_by_qualname.get(callee)
                if summary_info is not None:
                    if summary_info.name == "__init__":
                        return frozenset(
                            {summary_info.class_qualname.rsplit(".", 1)[-1]}
                        )
                    returns = summary_info.node.returns  # type: ignore[attr-defined]
                    return annotation_type_names(returns)
            # Unresolved constructor by bare class name.
            terminal = _terminal(expr.func)
            if terminal and terminal[:1].isupper():
                if self.project.symbols.find_class(terminal) is not None:
                    return frozenset({terminal})
            return frozenset()
        return frozenset()


# ---------------------------------------------------------------------------
# Obs catalogue
# ---------------------------------------------------------------------------


@dataclass
class ObsCatalogue:
    """The event/metric vocabulary RL009 validates emit sites against."""

    #: Event name -> allowed field names.
    events: Dict[str, FrozenSet[str]]
    #: Metric name -> allowed label names.
    metrics: Dict[str, FrozenSet[str]]

    @classmethod
    def from_module(cls, module: ModuleInfo) -> Optional["ObsCatalogue"]:
        """Extract the catalogue from ``repro/obs/schema.py``'s AST."""
        events = cls._literal_dict(module, "EVENTS")
        metrics = cls._literal_dict(module, "METRICS")
        if events is None or metrics is None:
            return None
        return cls(
            events={
                name: frozenset(fields) for name, fields in events.items()
            },
            metrics={
                name: frozenset(spec.get("labels", ()))
                for name, spec in metrics.items()
            },
        )

    @classmethod
    def from_import(cls) -> Optional["ObsCatalogue"]:
        """Fallback: read the live catalogue from the installed package."""
        try:
            from repro.obs import schema
        except ImportError:  # pragma: no cover - schema ships with lint
            return None
        return cls(
            events={
                name: frozenset(fields)
                for name, fields in schema.EVENTS.items()
            },
            metrics={
                name: frozenset(spec.get("labels", ()))  # type: ignore[arg-type]
                for name, spec in schema.METRICS.items()
            },
        )

    @staticmethod
    def _literal_dict(
        module: ModuleInfo, name: str
    ) -> Optional[Dict[str, Dict[str, object]]]:
        node = module.assignments.get(name)
        if node is None:
            return None
        try:
            value = ast.literal_eval(node)
        except (ValueError, SyntaxError):
            return None
        return value if isinstance(value, dict) else None


# ---------------------------------------------------------------------------
# Escape analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EscapedRaise:
    """One exception that escapes a function, with its witness chain."""

    #: Terminal name of the escaping exception type.
    name: str
    #: The raise statement it originates from.
    site: RaiseSite
    #: Qualname of the function containing the raise.
    origin: str
    #: Call chain from the analyzed function down to ``origin``.
    chain: Tuple[str, ...] = ()


#: Known builtin exception hierarchy (terminal names), enough to decide
#: whether ``except X`` catches a raise of ``Y`` without imports.
_BUILTIN_BASES: Dict[str, Tuple[str, ...]] = {
    "FramingError": ("WireError",),
    "StallError": ("WireError",),
    "WireError": ("ProtocolError",),
    "PlaylistError": ("ProtocolError", "ValueError"),
    "MultipartError": ("ProtocolError", "ValueError"),
    "UnicodeDecodeError": ("ValueError",),
    "UnicodeEncodeError": ("ValueError",),
    "KeyError": ("LookupError",),
    "IndexError": ("LookupError",),
    "FileNotFoundError": ("OSError",),
    "TimeoutError": ("OSError",),
    "ConnectionError": ("OSError",),
    "BrokenPipeError": ("ConnectionError", "OSError"),
    "ConnectionResetError": ("ConnectionError", "OSError"),
    "ZeroDivisionError": ("ArithmeticError",),
    "OverflowError": ("ArithmeticError",),
}


class ProjectContext:
    """Everything a project-level rule may look at, tree-wide."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {
            module.name: module for module in modules if module.name
        }
        self.symbols = SymbolTable(self.modules)
        self.class_by_qualname: Dict[str, ClassInfo] = {}
        self.function_by_qualname: Dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for info in module.classes.values():
                self.class_by_qualname[info.qualname] = info
                for method in info.methods.values():
                    self.function_by_qualname[method.qualname] = method
            for function in module.functions.values():
                self.function_by_qualname[function.qualname] = function
        self.summaries: Dict[str, FunctionSummary] = {}
        self.call_graph = CallGraph()
        self._walkers: Dict[str, _FunctionWalker] = {}
        self._build_summaries()
        self._catalogue: Optional[ObsCatalogue] = None
        self._catalogue_built = False
        self._escape_cache: Dict[str, Dict[str, EscapedRaise]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_contexts(
        cls, contexts: Iterable[object]
    ) -> "ProjectContext":
        """Build from engine :class:`~repro.lint.core.ModuleContext`s."""
        modules = []
        for context in contexts:
            rel_parts = getattr(context, "rel_parts", ())
            name = module_name_from_rel_parts(rel_parts)
            if not name:
                continue
            modules.append(
                ModuleInfo(
                    name=name,
                    path=getattr(context, "path", "<unknown>"),
                    tree=getattr(context, "tree"),
                )
            )
        return cls(modules)

    def _build_summaries(self) -> None:
        for module in self.modules.values():
            for function in self._iter_functions(module):
                walker = _FunctionWalker(self, module, function)
                summary = walker.walk()
                self.summaries[function.qualname] = summary
                self._walkers[function.qualname] = walker
                for site in summary.calls:
                    self.call_graph.add(site)
                # Nested defs get their own summaries too.
                for nested in walker.local_functions.values():
                    if nested.qualname not in self.summaries:
                        nested_walker = _FunctionWalker(
                            self, module, nested
                        )
                        nested_summary = nested_walker.walk()
                        self.summaries[nested.qualname] = nested_summary
                        self._walkers[nested.qualname] = nested_walker
                        for site in nested_summary.calls:
                            self.call_graph.add(site)

    def _iter_functions(
        self, module: ModuleInfo
    ) -> Iterable[FunctionInfo]:
        for function in module.functions.values():
            yield function
        for info in module.classes.values():
            for method in info.methods.values():
                yield method

    # ------------------------------------------------------------------
    # Module lookup
    # ------------------------------------------------------------------
    def module_named(self, name: str) -> Optional[ModuleInfo]:
        """The module with dotted name ``name`` (``None`` if absent)."""
        return self.modules.get(name)

    # ------------------------------------------------------------------
    # Obs catalogue
    # ------------------------------------------------------------------
    @property
    def obs_catalogue(self) -> Optional[ObsCatalogue]:
        """The schema catalogue: static when ``obs/schema.py`` is in the
        linted tree, imported otherwise."""
        if not self._catalogue_built:
            self._catalogue_built = True
            schema_module = self.modules.get("repro.obs.schema")
            if schema_module is not None:
                self._catalogue = ObsCatalogue.from_module(schema_module)
            if self._catalogue is None:
                self._catalogue = ObsCatalogue.from_import()
        return self._catalogue

    # ------------------------------------------------------------------
    # Exception matching
    # ------------------------------------------------------------------
    def exception_ancestors(self, name: str) -> Set[str]:
        """Terminal names of ``name``'s ancestors (project + builtin)."""
        out: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            parents: Set[str] = set(_BUILTIN_BASES.get(current, ()))
            info = self.symbols.find_class(current)
            if info is not None:
                parents |= self.symbols.ancestor_names(info)
            for parent in parents:
                if parent not in out:
                    out.add(parent)
                    stack.append(parent)
        return out

    def catches(self, handler_names: FrozenSet[str], raised: str) -> bool:
        """Whether ``except <handler_names>`` stops a raise of ``raised``."""
        if not handler_names:
            return False
        if {"Exception", "BaseException"} & handler_names:
            return True
        if raised in handler_names:
            return True
        return bool(self.exception_ancestors(raised) & handler_names)

    # ------------------------------------------------------------------
    # Escape analysis
    # ------------------------------------------------------------------
    def escapes(
        self, qualname: str, _active: Optional[Set[str]] = None
    ) -> Dict[str, EscapedRaise]:
        """Exception names escaping ``qualname``, with witness chains.

        Direct raises are filtered by the ``try`` context at the raise;
        callee escapes are filtered by the ``try`` context at the call
        site. Recursion through cycles under-approximates (the branch in
        progress contributes nothing), which errs toward silence.
        """
        cached = self._escape_cache.get(qualname)
        if cached is not None:
            return cached
        active = _active if _active is not None else set()
        if qualname in active:
            return {}
        active.add(qualname)
        summary = self.summaries.get(qualname)
        out: Dict[str, EscapedRaise] = {}
        if summary is None:
            active.discard(qualname)
            return out
        for raise_site in summary.raises:
            names = (
                [raise_site.name]
                if raise_site.name
                else sorted(raise_site.reraises)
            )
            for name in names:
                if not name or name in ("BaseException",):
                    continue
                if self.catches(raise_site.caught, name):
                    continue
                out.setdefault(
                    name,
                    EscapedRaise(
                        name=name,
                        site=raise_site,
                        origin=qualname,
                        chain=(qualname,),
                    ),
                )
        for call in summary.calls:
            if not call.callee:
                continue
            for name, escaped in self.escapes(
                call.callee, _active=active
            ).items():
                if self.catches(call.caught, name):
                    continue
                out.setdefault(
                    name,
                    EscapedRaise(
                        name=name,
                        site=escaped.site,
                        origin=escaped.origin,
                        chain=(qualname, *escaped.chain),
                    ),
                )
        active.discard(qualname)
        if not (active - {qualname}):
            # Only memoize top-level results: mid-recursion sets are
            # truncated by the cycle guard.
            self._escape_cache[qualname] = out
        return out

    # ------------------------------------------------------------------
    # Authority mutators (RL010)
    # ------------------------------------------------------------------
    def mutating_methods(self, info: ClassInfo) -> Set[str]:
        """Methods of ``info`` that mutate instance state.

        Direct mutators assign/augassign a ``self`` attribute (or mutate
        one of its containers in place); public methods that delegate to
        a public direct mutator on ``self`` count too (``revoke_cell``
        -> ``revoke``). Constructors are exempt, and *private* helpers
        reached from read paths (lazy normalisation like ``_roll``) do
        not drag their public callers in.
        """
        direct: Set[str] = set()
        for name, method in info.methods.items():
            if name in _CTOR_METHODS:
                continue
            summary = self.summaries.get(method.qualname)
            if summary is not None and summary.mutated_attrs:
                direct.add(name)
        out = set(direct)
        public_direct = {
            name for name in direct if not name.startswith("_")
        }
        for name, method in info.methods.items():
            if name in out or name in _CTOR_METHODS:
                continue
            summary = self.summaries.get(method.qualname)
            if summary is not None and (
                summary.self_calls & public_direct
            ):
                out.add(name)
        return out

    # ------------------------------------------------------------------
    # Call-site argument binding (RL008 obligation propagation)
    # ------------------------------------------------------------------
    def path_of(self, qualname: str) -> str:
        """Source path of the module defining ``qualname``."""
        info = self.function_by_qualname.get(qualname)
        if info is None:
            summary = self.summaries.get(qualname)
            info = summary.info if summary is not None else None
        if info is None:
            return "<unknown>"
        module = self.modules.get(info.module)
        return module.path if module is not None else "<unknown>"

    def bound_argument(
        self, site: CallSite, param: str
    ) -> Optional[ast.expr]:
        """The expression ``site`` binds to the callee parameter ``param``.

        Returns ``None`` when the argument is absent (the callee's
        default applies) or the binding cannot be decided statically
        (``*args`` splats before the slot).
        """
        callee = self.function_by_qualname.get(site.callee)
        if callee is None:
            return None
        params = list(callee.param_names())
        if params and params[0] == "self":
            params = params[1:]
        if param not in params:
            return None
        for keyword in site.node.keywords:
            if keyword.arg == param:
                return keyword.value
        index = params.index(param)
        positional = site.node.args
        if any(isinstance(arg, ast.Starred) for arg in positional):
            return None
        if index < len(positional):
            return positional[index]
        return None

    def argument_provenance(
        self, site: CallSite, param: str
    ) -> Tuple[Provenance, Optional[ast.expr]]:
        """Seed provenance of the value ``site`` passes for ``param``.

        Evaluated in the *caller's* environment. A missing argument
        inherits the provenance of the callee's default (an absent
        default reads as unseeded ``None`` for RNG-style signatures).
        """
        walker = self._walkers.get(site.caller)
        if walker is None:
            return Provenance.unknown(), None
        expr = self.bound_argument(site, param)
        if expr is None:
            callee = self.function_by_qualname.get(site.callee)
            default = (
                callee.param_default(param) if callee is not None else None
            )
            if default is None:
                return Provenance.unknown(), None
            # Provenance comes from the callee's default, but any
            # finding must anchor at the *call site* — the default's
            # node carries line numbers from the wrong file.
            return walker.seed_provenance(default), None
        return walker.seed_provenance(expr), expr
