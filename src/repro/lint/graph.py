"""Module graph, symbol table and call graph for project-level lint.

The per-module rules (RL001-RL007) see one file at a time; the
cross-module rules (RL008-RL011) need to know *who calls whom* across
the whole ``src/repro`` tree. This module builds that picture from the
ASTs the engine already parsed:

* :class:`ModuleInfo` — one module's bindings: its imports (plain,
  aliased, ``from``-imports, ``import *``), top-level functions,
  classes with their methods and attribute types, and module-level
  assignments;
* :class:`SymbolTable` — resolves a name used in one module to the
  function/class that defines it, following aliases, re-exports and
  star imports across module boundaries (cycle-safe);
* :class:`CallGraph` — one :class:`CallSite` per resolved call,
  annotated with the exception names the surrounding ``try`` blocks
  would catch (the raw material of the RL011 escape analysis).

Resolution is deliberately conservative: a name the table cannot
resolve stays unresolved and the project rules skip it — the rules
prefer missing a violation over flagging idiomatic code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "RaiseSite",
    "SymbolTable",
    "annotation_type_names",
    "module_name_from_rel_parts",
]


def module_name_from_rel_parts(rel_parts: Sequence[str]) -> str:
    """Dotted module name for repro-relative path parts.

    ``("core", "permits.py")`` becomes ``"repro.core.permits"``;
    ``("core", "__init__.py")`` becomes ``"repro.core"``. Parts outside
    a ``repro`` tree (empty tuple) yield ``""``.
    """
    if not rel_parts:
        return ""
    parts = list(rel_parts)
    last = parts[-1]
    if not last.endswith(".py"):
        return ""
    stem = last[: -len(".py")]
    if stem == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = stem
    return ".".join(["repro", *parts]) if parts else "repro"


def annotation_type_names(node: Optional[ast.AST]) -> FrozenSet[str]:
    """Every plain identifier mentioned in an annotation expression.

    ``Optional[CapTracker]`` yields ``{"Optional", "CapTracker"}``;
    string annotations (forward references) are parsed and folded in.
    Callers intersect the result with the class names they care about,
    so the typing wrappers riding along are harmless.
    """
    if node is None:
        return frozenset()
    names: Set[str] = set()
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Name):
            names.add(current.id)
        elif isinstance(current, ast.Attribute):
            names.add(current.attr)
        elif isinstance(current, ast.Constant) and isinstance(
            current.value, str
        ):
            try:
                stack.append(ast.parse(current.value, mode="eval").body)
            except SyntaxError:
                pass
        stack.extend(ast.iter_child_nodes(current))
    return frozenset(names)


@dataclass
class FunctionInfo:
    """One function or method definition, addressable project-wide."""

    #: Fully qualified name, e.g. ``repro.core.permits.PermitServer.revoke``.
    qualname: str
    #: Dotted module the definition lives in.
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Qualname of the owning class for methods, ``""`` for functions.
    class_qualname: str = ""

    @property
    def name(self) -> str:
        """The bare function name."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_method(self) -> bool:
        """Whether the definition sits inside a class body."""
        return bool(self.class_qualname)

    def param_names(self) -> Tuple[str, ...]:
        """Positional + keyword-only parameter names, ``self``/``cls`` kept."""
        args = self.node.args  # type: ignore[attr-defined]
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        return tuple(arg.arg for arg in ordered)

    def param_annotation(self, name: str) -> Optional[ast.AST]:
        """The annotation node of parameter ``name`` (``None`` if absent)."""
        args = self.node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg == name:
                return arg.annotation
        return None

    def param_default(self, name: str) -> Optional[ast.AST]:
        """The default-value node of parameter ``name`` (``None`` if required)."""
        args = self.node.args  # type: ignore[attr-defined]
        positional = [*args.posonlyargs, *args.args]
        offset = len(positional) - len(args.defaults)
        for index, arg in enumerate(positional):
            if arg.arg == name and index >= offset:
                return args.defaults[index - offset]
        for index, arg in enumerate(args.kwonlyargs):
            if arg.arg == name:
                return args.kw_defaults[index]
        return None


@dataclass
class ClassInfo:
    """One class definition with its methods and attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Base-class expressions, unresolved (the symbol table resolves).
    base_nodes: List[ast.expr] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Attribute name -> identifiers from its annotation (``AnnAssign``
    #: in the class body, or ``self.x = <param>`` in ``__init__`` /
    #: ``__post_init__`` where the parameter is annotated).
    attr_type_names: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: Attribute name -> the ``__init__``/``__post_init__`` parameter it
    #: is assigned from verbatim (``self.seed = seed``), for provenance.
    attr_from_param: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The bare class name."""
        return self.qualname.rsplit(".", 1)[-1]


_CTOR_METHODS = ("__init__", "__post_init__")


class ModuleInfo:
    """Symbol-level view of one parsed module."""

    def __init__(self, name: str, path: str, tree: ast.Module) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        #: Bound name -> dotted module (``import a.b as c`` binds ``c``;
        #: plain ``import a.b`` binds the root ``a``).
        self.module_imports: Dict[str, str] = {}
        #: Bound name -> (module, symbol) for ``from m import s as b``.
        self.symbol_imports: Dict[str, Tuple[str, str]] = {}
        #: Modules star-imported with ``from m import *``.
        self.star_imports: List[str] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Module-level simple assignments: name -> value expression.
        self.assignments: Dict[str, ast.expr] = {}
        self._collect()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                self._collect_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._collect_import_from(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FunctionInfo(
                    qualname=f"{self.name}.{node.name}",
                    module=self.name,
                    node=node,
                )
            elif isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assignments[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.assignments[node.target.id] = node.value

    def _collect_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.module_imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".", 1)[0]
                self.module_imports[root] = root

    def _collect_import_from(self, node: ast.ImportFrom) -> None:
        target = self._resolve_relative(node.module, node.level)
        if target is None:
            return
        for alias in node.names:
            if alias.name == "*":
                self.star_imports.append(target)
            else:
                bound = alias.asname or alias.name
                self.symbol_imports[bound] = (target, alias.name)

    def _resolve_relative(
        self, module: Optional[str], level: int
    ) -> Optional[str]:
        if level == 0:
            return module
        if not self.name:
            return None
        # ``self.name`` is the module; its package is one level up
        # (``repro.core.permits`` -> ``repro.core`` at level 1).
        parts = self.name.split(".")
        if len(parts) < level:
            return None
        base = parts[: len(parts) - level]
        if module:
            base.append(module)
        return ".".join(base) if base else None

    def _collect_class(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{self.name}.{node.name}",
            module=self.name,
            node=node,
            base_nodes=list(node.bases),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = FunctionInfo(
                    qualname=f"{info.qualname}.{stmt.name}",
                    module=self.name,
                    node=stmt,
                    class_qualname=info.qualname,
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attr_type_names[stmt.target.id] = annotation_type_names(
                    stmt.annotation
                )
        for ctor_name in _CTOR_METHODS:
            ctor = info.methods.get(ctor_name)
            if ctor is not None:
                self._collect_ctor_attrs(info, ctor)
        self.classes[node.name] = info

    def _collect_ctor_attrs(
        self, info: ClassInfo, ctor: FunctionInfo
    ) -> None:
        for stmt in ast.walk(ctor.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if isinstance(stmt, ast.AnnAssign):
                    info.attr_type_names.setdefault(
                        attr, annotation_type_names(stmt.annotation)
                    )
                value = stmt.value
                if isinstance(value, ast.Name):
                    if value.id in ctor.param_names():
                        info.attr_from_param.setdefault(attr, value.id)
                        annotation = ctor.param_annotation(value.id)
                        if annotation is not None:
                            info.attr_type_names.setdefault(
                                attr, annotation_type_names(annotation)
                            )
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and len(value.args) == 1
                    and isinstance(value.args[0], ast.Name)
                    and value.args[0].id in ctor.param_names()
                    and value.func.id in ("int", "float", "str")
                ):
                    # ``self.seed = int(seed)`` — the cast keeps the
                    # parameter provenance.
                    info.attr_from_param.setdefault(attr, value.args[0].id)

    # ------------------------------------------------------------------
    # Local lookup
    # ------------------------------------------------------------------
    def public_names(self) -> Set[str]:
        """Names a ``from module import *`` would bind (no ``_`` names)."""
        names = set(self.functions) | set(self.classes)
        names |= set(self.assignments)
        names |= set(self.symbol_imports)
        names |= set(self.module_imports)
        return {name for name in names if not name.startswith("_")}


class SymbolTable:
    """Project-wide name resolution over a set of :class:`ModuleInfo`."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, module: ModuleInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, object]]:
        """Resolve bare ``name`` as used inside ``module``.

        Returns ``("function", FunctionInfo)``, ``("class", ClassInfo)``,
        ``("module", dotted_name)`` or ``None``. Import chains and star
        imports are followed across modules, cycle-safe.
        """
        if name in module.functions:
            return ("function", module.functions[name])
        if name in module.classes:
            return ("class", module.classes[name])
        if name in module.symbol_imports:
            target_module, symbol = module.symbol_imports[name]
            return self._resolve_in(target_module, symbol, _seen or set())
        if name in module.module_imports:
            return ("module", module.module_imports[name])
        for star_target in module.star_imports:
            resolved = self._resolve_star(star_target, name, _seen or set())
            if resolved is not None:
                return resolved
        return None

    def _resolve_in(
        self, module_name: str, symbol: str, seen: Set[str]
    ) -> Optional[Tuple[str, object]]:
        key = f"{module_name}:{symbol}"
        if key in seen:
            return None
        seen.add(key)
        # ``from a import b`` can name a submodule just as well as a
        # symbol; prefer the symbol when both exist.
        target = self.modules.get(module_name)
        if target is not None:
            resolved = self.resolve(target, symbol, _seen=seen)
            if resolved is not None:
                return resolved
        submodule = f"{module_name}.{symbol}"
        if submodule in self.modules:
            return ("module", submodule)
        if target is None and module_name.startswith("repro"):
            return None
        if target is None:
            # stdlib / third-party: keep the dotted path so callers can
            # at least pattern-match (``random.Random``).
            return ("module", submodule)
        return None

    def _resolve_star(
        self, module_name: str, name: str, seen: Set[str]
    ) -> Optional[Tuple[str, object]]:
        if module_name in seen:
            return None
        seen.add(module_name)
        target = self.modules.get(module_name)
        if target is None or name.startswith("_"):
            return None
        if name in target.public_names():
            return self.resolve(target, name, _seen=seen)
        return None

    def resolve_dotted(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[Tuple[str, object]]:
        """Resolve a dotted reference (``alias.Class.method`` etc.)."""
        parts = dotted.split(".")
        resolved = self.resolve(module, parts[0])
        for part in parts[1:]:
            if resolved is None:
                return None
            kind, value = resolved
            if kind == "module":
                resolved = self._resolve_in(str(value), part, set())
            elif kind == "class":
                info = value  # type: ClassInfo  # noqa: F842
                method = info.methods.get(part)  # type: ignore[union-attr]
                resolved = ("function", method) if method else None
            else:
                return None
        return resolved

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def base_names(self, info: ClassInfo) -> Set[str]:
        """Terminal identifiers of ``info``'s direct bases."""
        names: Set[str] = set()
        for base in info.base_nodes:
            if isinstance(base, ast.Name):
                names.add(base.id)
            elif isinstance(base, ast.Attribute):
                names.add(base.attr)
        return names

    def ancestor_names(self, info: ClassInfo) -> Set[str]:
        """Terminal names of every ancestor reachable in the project.

        Unresolvable bases (builtins like ``ValueError``) contribute
        their bare name, which is exactly what exception matching needs.
        """
        out: Set[str] = set()
        stack: List[ClassInfo] = [info]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            module = self.modules.get(current.module)
            for base in current.base_nodes:
                terminal = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else ""
                )
                if not terminal:
                    continue
                out.add(terminal)
                if module is not None:
                    resolved = self.resolve(module, terminal)
                    if resolved is not None and resolved[0] == "class":
                        stack.append(resolved[1])  # type: ignore[arg-type]
        return out

    def find_class(self, name: str) -> Optional[ClassInfo]:
        """The unique project class with bare name ``name`` (else None)."""
        matches = [
            info
            for module in self.modules.values()
            for cls_name, info in module.classes.items()
            if cls_name == name
        ]
        return matches[0] if len(matches) == 1 else None


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved (or not) to a project function."""

    #: Qualname of the function containing the call.
    caller: str
    #: Qualname of the resolved callee (``""`` when unresolved).
    callee: str
    node: ast.Call
    #: Exception names the enclosing ``try`` blocks catch at this site.
    caught: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement and what the enclosing handlers catch."""

    #: Terminal name of the raised exception (``""`` for bare re-raise).
    name: str
    node: ast.Raise
    caught: FrozenSet[str] = frozenset()
    #: For a bare ``raise`` inside a handler: what that handler caught.
    reraises: FrozenSet[str] = frozenset()


class CallGraph:
    """Call edges between project functions, with reverse lookup."""

    def __init__(self) -> None:
        self.sites: List[CallSite] = []
        self._by_caller: Dict[str, List[CallSite]] = {}
        self._by_callee: Dict[str, List[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        """Record one call site in both indexes."""
        self.sites.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.callee:
            self._by_callee.setdefault(site.callee, []).append(site)

    def calls_from(self, qualname: str) -> Sequence[CallSite]:
        """Every call site inside function ``qualname``."""
        return self._by_caller.get(qualname, ())

    def callers_of(self, qualname: str) -> Sequence[CallSite]:
        """Every resolved call site targeting ``qualname``."""
        return self._by_callee.get(qualname, ())

    def functions(self) -> Iterator[str]:
        """Every function that makes at least one call."""
        return iter(self._by_caller)
