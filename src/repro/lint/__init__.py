"""repro-lint: AST-based invariant checks for the reproduction.

A self-contained static-analysis layer that enforces the conventions
the simulator's correctness rests on. Per-module rules see one file's
AST at a time:

* **RL001** — stochastic code draws from seeded RngFactory streams;
* **RL002** — unit conversions go through :mod:`repro.util.units`;
* **RL003** — experiment modules honour the ``@experiment`` contract;
* **RL004** — recovery paths never swallow exceptions;
* **RL005** — no exact ``==`` on simulated clocks or byte volumes;
* **RL006** — wire parse paths raise only ProtocolError subclasses;
* **RL007** — public surfaces carry one-line docstring summaries.

Project rules see the whole tree at once — symbol table, call graph
and dataflow summaries (:mod:`repro.lint.graph`,
:mod:`repro.lint.project`):

* **RL008** — RNG seeds derive from a seeded RngFactory root,
  transitively through helpers;
* **RL009** — instrumentation sites emit only catalogued event/metric
  names and fields (obs/schema.py);
* **RL010** — CapTracker/PermitServer mutations happen only in the
  guard layer (the static twin of the hunt's authority oracle);
* **RL011** — only ProtocolError escapes wire parse paths, proven
  across call boundaries.

Run it with the ``repro-lint`` console script (see
:mod:`repro.lint.cli`), or programmatically via :func:`lint_source` /
:func:`lint_paths` / :func:`lint_sources`. Suppress a justified
exception inline with ``# repro-lint: disable=<code>``; dead comments
are flagged by ``--warn-unused-suppressions``.
"""

from repro.lint.core import (
    PARSE_ERROR_CODE,
    UNUSED_SUPPRESSION_CODE,
    DuplicateRuleError,
    Finding,
    LintError,
    LintRun,
    ModuleContext,
    ProjectRule,
    Rule,
    UnknownRuleError,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    lint_sources,
    module_root,
    parse_suppressions,
    repro_relative_parts,
    rule,
    select_rules,
)
from repro.lint.project import ProjectContext
from repro.lint.reporters import render_json, render_text, run_payload

__all__ = [
    "PARSE_ERROR_CODE",
    "UNUSED_SUPPRESSION_CODE",
    "DuplicateRuleError",
    "Finding",
    "LintError",
    "LintRun",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "module_root",
    "parse_suppressions",
    "repro_relative_parts",
    "render_json",
    "render_text",
    "rule",
    "run_payload",
    "select_rules",
]
