"""repro-lint: AST-based invariant checks for the reproduction.

A self-contained static-analysis layer that enforces the conventions
the simulator's correctness rests on:

* **RL001** — stochastic code draws from seeded RngFactory streams;
* **RL002** — unit conversions go through :mod:`repro.util.units`;
* **RL003** — experiment modules honour the ``@experiment`` contract;
* **RL004** — recovery paths never swallow exceptions;
* **RL005** — no exact ``==`` on simulated clocks or byte volumes;
* **RL006** — wire parse paths raise only ProtocolError subclasses.

Run it with the ``repro-lint`` console script (see
:mod:`repro.lint.cli`), or programmatically via :func:`lint_source` /
:func:`lint_paths`. Suppress a justified exception inline with
``# repro-lint: disable=<code>``.
"""

from repro.lint.core import (
    PARSE_ERROR_CODE,
    DuplicateRuleError,
    Finding,
    LintError,
    LintRun,
    ModuleContext,
    Rule,
    UnknownRuleError,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    parse_suppressions,
    repro_relative_parts,
    rule,
    select_rules,
)
from repro.lint.reporters import render_json, render_text, run_payload

__all__ = [
    "PARSE_ERROR_CODE",
    "DuplicateRuleError",
    "Finding",
    "LintError",
    "LintRun",
    "ModuleContext",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "repro_relative_parts",
    "render_json",
    "render_text",
    "rule",
    "run_payload",
    "select_rules",
]
