"""The cross-module rules: RL008-RL011.

These run on the :class:`~repro.lint.project.ProjectContext` — the
whole-tree symbol table, call graph and function summaries — instead of
one module's AST, so they can see what the per-module rules (RL001-
RL007) structurally cannot: an unseeded value laundered through a
helper, an event name the obs catalogue never defined, an authority
mutation from outside the guard layer, a ``ValueError`` escaping a
parse path two calls down.

The same design principle applies as in :mod:`repro.lint.rules`, only
more so: cross-module inference is approximate, and a project rule that
cries wolf gets disabled. Every analysis here degrades to silence when
it cannot *prove* a violation — unresolved callees, unknown receiver
types and opaque seed expressions all read as clean.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.core import Finding, ProjectRule, rule
from repro.lint.project import EscapedRaise, ProjectContext, Provenance

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _finding(
    project: ProjectContext,
    code: str,
    message: str,
    qualname: str,
    node: object,
) -> Finding:
    """A finding anchored at ``node`` inside the module owning ``qualname``."""
    return Finding(
        code=code,
        message=message,
        path=project.path_of(qualname),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
    )


def _package_of(module: str) -> str:
    """Top-level repro package of a dotted module name (``""`` if none)."""
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


def _short_chain(chain: Tuple[str, ...]) -> str:
    """Readable call chain: bare function names joined with arrows."""
    return " -> ".join(name.rsplit(".", 1)[-1] for name in chain)


# ---------------------------------------------------------------------------
# RL008 — seed provenance
# ---------------------------------------------------------------------------

#: The one module allowed to construct RNGs from raw material: it IS
#: the seeded root everything else derives from.
_BLESSED_RNG_MODULES = frozenset({"repro.util.rng"})


@rule
class SeedProvenanceRule(ProjectRule):
    """Every RNG must trace back to a seeded RngFactory root."""

    code = "RL008"
    title = "RNG seeds must derive from a seeded RngFactory root"
    rationale = (
        "RL001 catches an unseeded default_rng() spelled inline, but not "
        "one laundered through a helper — `make_rng(seed=None)` looks "
        "seeded at the construction site and is OS entropy at the call "
        "site. Tracing provenance through the call graph closes that "
        "hole: a seed is either a literal, an RngFactory derivation, or "
        "an obligation pushed to the callers until one of those proves "
        "it (or provably fails to)."
    )
    scope = "src/repro (all packages except util/rng.py, the root)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag RNG constructions whose seed is provably unseeded."""
        for qualname, summary in sorted(project.summaries.items()):
            if summary.info.module in _BLESSED_RNG_MODULES:
                continue
            if _package_of(summary.info.module) == "lint":
                continue
            for site in summary.rng_sites:
                provenance = site.provenance
                if provenance.kind == "unseeded":
                    yield _finding(
                        project,
                        self.code,
                        f"{site.kind}(...) here is constructed from "
                        "provably unseeded input (missing/None seed); "
                        "derive the seed from a RngFactory stream "
                        "(repro.util.rng)",
                        qualname,
                        site.node,
                    )
                elif provenance.kind == "param":
                    yield from self._check_obligation(
                        project,
                        qualname,
                        provenance.param,
                        rng_kind=site.kind,
                        visited=set(),
                        depth=0,
                    )

    def _check_obligation(
        self,
        project: ProjectContext,
        qualname: str,
        param: str,
        rng_kind: str,
        visited: Set[Tuple[str, str]],
        depth: int,
    ) -> Iterator[Finding]:
        # The seed flows in through ``param`` of ``qualname``: every
        # caller must pass something seeded. Obligations chain upward
        # until proven, refuted, or lost to an unresolvable edge.
        if depth > 4 or (qualname, param) in visited:
            return
        visited.add((qualname, param))
        target = qualname
        if param.startswith("__ctor__:"):
            # ``self.seed`` came from the constructor: the obligation
            # sits on the owning class's __init__ callers.
            param = param.split(":", 1)[1]
            info = project.function_by_qualname.get(qualname)
            if info is None or not info.class_qualname:
                return
            target = f"{info.class_qualname}.__init__"
            if target not in project.function_by_qualname:
                return
        for site in project.call_graph.callers_of(target):
            provenance, expr = project.argument_provenance(site, param)
            if provenance.kind == "unseeded":
                callee_name = target.rsplit(".", 2)[-1]
                yield _finding(
                    project,
                    self.code,
                    f"this call passes an unseeded value for parameter "
                    f"{param!r} of {callee_name!r}, which uses it to "
                    f"seed a {rng_kind}; derive it from a RngFactory "
                    "stream (repro.util.rng)",
                    site.caller,
                    expr if expr is not None else site.node,
                )
            elif provenance.kind == "param":
                yield from self._check_obligation(
                    project,
                    site.caller,
                    provenance.param,
                    rng_kind,
                    visited,
                    depth + 1,
                )


# ---------------------------------------------------------------------------
# RL009 — obs emit sites match the schema catalogue
# ---------------------------------------------------------------------------

#: Emit-method kwargs owned by the Instrumentation signature itself,
#: not the event/metric schema.
_RESERVED_EMIT_KWARGS = frozenset({"time", "amount", "value"})


@rule
class ObsSchemaSiteRule(ProjectRule):
    """Emit sites may only use names and keys the obs schema defines."""

    code = "RL009"
    title = "instrumentation sites must emit catalogued names and fields"
    rationale = (
        "The Instrumentation facade validates names at runtime — but "
        "only on code paths a test actually drives with capture on. A "
        "typo'd event name or field key on a rare branch (fault "
        "recovery, permit revocation) raises in production instead of "
        "CI. Checking every literal emit site against obs/schema.py "
        "moves that failure to lint time."
    )
    scope = "src/repro (every Instrumentation call site)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Validate every statically-known emit site against the schema."""
        catalogue = project.obs_catalogue
        if catalogue is None:
            return
        for qualname, summary in sorted(project.summaries.items()):
            if _package_of(summary.info.module) == "lint":
                continue
            for site in summary.emit_sites:
                if site.name is None:
                    continue
                if site.method == "event":
                    known = catalogue.events
                    kind = "event"
                else:
                    known = catalogue.metrics
                    kind = "metric"
                allowed = known.get(site.name)
                if allowed is None:
                    yield _finding(
                        project,
                        self.code,
                        f"obs.{site.method}() emits {kind} name "
                        f"{site.name!r}, which obs/schema.py does not "
                        "define; add it to the catalogue or fix the typo",
                        qualname,
                        site.node,
                    )
                    continue
                if site.has_star_kwargs:
                    continue
                for keyword in site.keywords:
                    if keyword in _RESERVED_EMIT_KWARGS:
                        continue
                    if keyword not in allowed:
                        label = (
                            "field" if site.method == "event" else "label"
                        )
                        yield _finding(
                            project,
                            self.code,
                            f"obs.{site.method}({site.name!r}, ...) "
                            f"passes {label} {keyword!r}, which the "
                            f"schema for this {kind} does not define "
                            f"(allowed: {', '.join(sorted(allowed)) or 'none'})",
                            qualname,
                            site.node,
                        )


# ---------------------------------------------------------------------------
# RL010 — authority discipline
# ---------------------------------------------------------------------------

#: The classes whose state *is* the paper's authority model.
_AUTHORITY_CLASSES = ("CapTracker", "PermitServer")

#: Modules allowed to mutate authority state: the guard layer that owns
#: the invariants, the component wiring that constructs/binds them, and
#: the hunt executor that drives authority knobs as scenario inputs.
_AUTHORITY_ALLOWED_MODULES = frozenset(
    {
        "repro.core.resilience",
        "repro.core.mobile",
        "repro.hunt.run",
    }
)


@rule
class AuthorityDisciplineRule(ProjectRule):
    """Authority state changes only through the guard layer."""

    code = "RL010"
    title = "CapTracker/PermitServer mutations belong to the guard layer"
    rationale = (
        "The hunt's authority oracle catches a rogue cap/permit "
        "mutation at runtime — after it corrupted a campaign. The "
        "static twin: any call to a state-mutating method of "
        "CapTracker/PermitServer from outside core/resilience.py (and "
        "the allowlisted wiring) is flagged before it runs. Read paths "
        "(may_advertise, has_valid_permit) stay callable from anywhere."
    )
    scope = "src/repro (callers of CapTracker/PermitServer mutators)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag authority-mutator calls from outside the allowlist."""
        for class_name in _AUTHORITY_CLASSES:
            info = project.symbols.find_class(class_name)
            if info is None:
                continue
            allowed = _AUTHORITY_ALLOWED_MODULES | {info.module}
            mutators = project.mutating_methods(info)
            for method_name in sorted(mutators):
                qualname = f"{info.qualname}.{method_name}"
                for site in project.call_graph.callers_of(qualname):
                    caller = project.function_by_qualname.get(site.caller)
                    if caller is None:
                        summary = project.summaries.get(site.caller)
                        caller = (
                            summary.info if summary is not None else None
                        )
                    if caller is None:
                        continue
                    if caller.class_qualname == info.qualname:
                        continue  # the class's own methods may mutate
                    if caller.module in allowed:
                        continue
                    yield _finding(
                        project,
                        self.code,
                        f"{class_name}.{method_name}() mutates authority "
                        f"state and may only be called from the guard "
                        "layer (core/resilience.py and the allowlisted "
                        f"wiring), not from {caller.module}",
                        site.caller,
                        site.node,
                    )


# ---------------------------------------------------------------------------
# RL011 — exception escape across call boundaries
# ---------------------------------------------------------------------------

#: The typed taxonomy parse paths are allowed to leak (see RL006).
_PROTOCOL_ERROR_NAMES = frozenset(
    {
        "ProtocolError",
        "WireError",
        "FramingError",
        "StallError",
        "PlaylistError",
        "MultipartError",
    }
)

#: Data-dependent exception types hostile input can trigger. Escapes of
#: these through a parse path are the bug class RL006 cannot see;
#: programming-error types (TypeError, AssertionError) stay exempt.
_DATA_ERROR_NAMES = frozenset(
    {
        "ValueError",
        "KeyError",
        "IndexError",
        "LookupError",
        "UnicodeDecodeError",
        "OverflowError",
        "ZeroDivisionError",
        "ArithmeticError",
    }
)

#: Same name-prefix convention as RL006: these verbs mark a parse path.
_PARSE_PREFIXES = ("parse", "decode", "read", "recv", "check")


def _is_parse_path(name: str) -> bool:
    stripped = name.lstrip("_")
    return any(stripped.startswith(prefix) for prefix in _PARSE_PREFIXES)


@rule
class ExceptionEscapeRule(ProjectRule):
    """Parse paths leak only ProtocolError, proven through the call graph."""

    code = "RL011"
    title = "only ProtocolError may escape wire parse paths, transitively"
    rationale = (
        "RL006 checks the raises a parse function spells out itself; a "
        "helper two calls down raising ValueError on hostile bytes "
        "still escapes every `except ProtocolError` and takes the "
        "proxy down. The call-graph escape analysis proves confinement "
        "across boundaries: an exception is clean only if some handler "
        "on the path actually catches it."
    )
    scope = "src/repro/proto, src/repro/web (parse/decode/read/recv/check)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Flag data errors that propagate uncaught out of parse paths."""
        seen: Set[Tuple[str, int, str]] = set()
        for qualname, summary in sorted(project.summaries.items()):
            if _package_of(summary.info.module) not in ("proto", "web"):
                continue
            if not _is_parse_path(summary.info.name):
                continue
            for name, escaped in sorted(project.escapes(qualname).items()):
                finding = self._judge(project, qualname, name, escaped, seen)
                if finding is not None:
                    yield finding

    def _judge(
        self,
        project: ProjectContext,
        entry: str,
        name: str,
        escaped: EscapedRaise,
        seen: Set[Tuple[str, int, str]],
    ) -> "Finding | None":
        if len(escaped.chain) < 2:
            return None  # direct raises are RL006's finding, not ours
        if name in _PROTOCOL_ERROR_NAMES:
            return None
        ancestors = project.exception_ancestors(name)
        if "ProtocolError" in ancestors:
            return None
        project_class = project.symbols.find_class(name)
        is_data_error = name in _DATA_ERROR_NAMES or bool(
            _DATA_ERROR_NAMES & ancestors
        )
        is_project_exception = project_class is not None and (
            name.endswith(("Error", "Exception"))
            or "Exception" in ancestors
        )
        if not is_data_error and not is_project_exception:
            return None
        origin_path = project.path_of(escaped.origin)
        key = (origin_path, getattr(escaped.site.node, "lineno", 1), name)
        if key in seen:
            return None
        seen.add(key)
        entry_name = entry.rsplit(".", 1)[-1]
        return _finding(
            project,
            self.code,
            f"{name} raised here escapes the parse path "
            f"{entry_name!r} (via {_short_chain(escaped.chain)}); wrap "
            "it in a ProtocolError subclass (repro.proto.errors) or "
            "catch it on the way out",
            escaped.origin,
            escaped.site.node,
        )
