"""Finding reporters: text for humans, JSON for CI.

Both render a :class:`~repro.lint.core.LintRun` deterministically
(findings are already sorted by path/line/col/code), so CI diffs are
stable run to run.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.core import LintRun, all_rules

__all__ = ["render_json", "render_text", "run_payload"]


def render_text(run: LintRun) -> str:
    """The classic linter layout: one ``path:line:col: CODE message``
    per finding, then a one-line summary."""
    lines = [
        f"{finding.location()}: {finding.code} {finding.message}"
        for finding in run.findings
    ]
    noun = "finding" if len(run.findings) == 1 else "findings"
    lines.append(
        f"{len(run.findings)} {noun} in {run.files_checked} files"
    )
    return "\n".join(lines)


def run_payload(run: LintRun) -> Dict[str, Any]:
    """The JSON-ready payload of one lint run."""
    return {
        "findings": [finding.to_dict() for finding in run.findings],
        "summary": {
            "files_checked": run.files_checked,
            "findings": len(run.findings),
            "by_rule": run.by_rule(),
            "ok": run.ok,
        },
    }


def render_json(run: LintRun) -> str:
    """``--format json`` output (sorted keys, trailing newline-free)."""
    return json.dumps(run_payload(run), indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: code, title and rationale per rule."""
    blocks = []
    for lint_rule in all_rules():
        blocks.append(
            f"{lint_rule.code}  {lint_rule.title}\n"
            f"       {lint_rule.rationale}"
        )
    return "\n".join(blocks)
