"""Finding reporters: text for humans, JSON for CI.

Both render a :class:`~repro.lint.core.LintRun` deterministically
(findings are already sorted by path/line/col/code), so CI diffs are
stable run to run. Wall-clock timings are the one nondeterministic
field: CI consumes them for the lint-budget assertion, diffs should
ignore them.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.lint.core import LintRun, all_rules
from repro.util.clitools import render_json_payload

__all__ = ["render_json", "render_rule_list", "render_text", "run_payload"]


def render_text(run: LintRun) -> str:
    """The classic linter layout: one ``path:line:col: CODE message``
    per finding, then a one-line summary."""
    lines = [
        f"{finding.location()}: {finding.code} {finding.message}"
        for finding in run.findings
    ]
    noun = "finding" if len(run.findings) == 1 else "findings"
    lines.append(
        f"{len(run.findings)} {noun} in {run.files_checked} files"
    )
    return "\n".join(lines)


def run_payload(run: LintRun) -> Dict[str, Any]:
    """The JSON-ready payload of one lint run."""
    return {
        "findings": [finding.to_dict() for finding in run.findings],
        "summary": {
            "files_checked": run.files_checked,
            "findings": len(run.findings),
            "by_rule": run.by_rule(),
            "ok": run.ok,
        },
        "timing": {
            "duration_s": round(run.duration_s, 6),
            "per_rule_s": {
                code: round(seconds, 6)
                for code, seconds in run.rule_timings.items()
            },
        },
    }


def render_json(run: LintRun) -> str:
    """``--format json`` output via the shared clitools rendering."""
    return render_json_payload(run_payload(run))


def render_rule_list() -> str:
    """``--list-rules`` output: code, title, scope and rationale."""
    blocks = []
    for lint_rule in all_rules():
        kind = "project" if lint_rule.project_level else "module"
        blocks.append(
            f"{lint_rule.code}  {lint_rule.title}  [{kind}]\n"
            f"       scope: {lint_rule.scope}\n"
            f"       {lint_rule.rationale}"
        )
    return "\n".join(blocks)
