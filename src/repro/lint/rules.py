"""The domain rules: RL001-RL007.

Each rule encodes one convention the reproduction's correctness rests
on. They are deliberately narrow: a rule that cries wolf gets disabled,
so every check is scoped to the packages where the invariant actually
matters and the heuristics prefer missing a violation over flagging
idiomatic code. Suppress a justified exception inline with
``# repro-lint: disable=<code>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Finding, ModuleContext, Rule, rule

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def terminal_identifier(node: ast.AST) -> str:
    """The final identifier of a Name/Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def identifiers_in(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _in_packages(
    context: ModuleContext, packages: Sequence[str]
) -> bool:
    """Whether the module lives under one of ``packages`` (repro-relative).

    Fixtures with synthetic paths (``repro/core/x.py``) scope the same
    way as real files because :func:`repro_relative_parts` keys off the
    last ``repro`` directory in the path.
    """
    parts = context.rel_parts
    return bool(parts) and parts[0] in packages


# ---------------------------------------------------------------------------
# RL001 — determinism
# ---------------------------------------------------------------------------

#: Packages whose code feeds simulated results and must be replayable.
_DETERMINISM_PACKAGES = (
    "core",
    "netsim",
    "traces",
    "pilot",
    "experiments",
    # bench measures wall-clock on purpose — but only via perf_counter,
    # which RL001 permits; time.time()/random.* are still banned there.
    "bench",
    # hunt promises seed-reproducible scenario generation, mutation and
    # minimization — the corpus is only replayable if that holds.
    "hunt",
    # fleet promises byte-identical merges at any --jobs/shard count;
    # its only entropy is the seed-derived population stream.
    "fleet",
)

#: ``datetime``-ish attributes that read the wall clock.
_WALL_CLOCK_ATTRS = frozenset({"now", "utcnow", "today"})


@rule
class DeterminismRule(Rule):
    """Forbid wall-clock and unseeded entropy in simulation code."""

    code = "RL001"
    title = "stochastic code must draw from a seeded RngFactory stream"
    scope = "core, netsim, traces, pilot, experiments, bench, hunt, fleet"
    rationale = (
        "Experiments promise byte-identical results at any --jobs count; "
        "one call to time.time(), the global random module, os.urandom or "
        "an unseeded default_rng() silently breaks that replay guarantee."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return _in_packages(context, _DETERMINISM_PACKAGES)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("time.time", "time.time_ns"):
                yield context.finding(
                    self.code,
                    f"{name}() reads the wall clock; use the engine clock "
                    "(network.time) or pass timestamps in",
                    node,
                )
            elif (
                terminal_identifier(node.func) in _WALL_CLOCK_ATTRS
                and "datetime" in name.split(".")
            ):
                yield context.finding(
                    self.code,
                    f"{name}() reads the wall clock; simulated components "
                    "must take explicit times",
                    node,
                )
            elif name == "os.urandom":
                yield context.finding(
                    self.code,
                    "os.urandom() is unseedable entropy; derive bytes from "
                    "an RngFactory stream instead",
                    node,
                )
            elif name.startswith("random."):
                yield context.finding(
                    self.code,
                    f"{name}() uses the global, unseeded random module; "
                    "derive a stream via repro.util.rng.RngFactory",
                    node,
                )
            elif name.endswith("random.default_rng") and not (
                node.args or node.keywords
            ):
                yield context.finding(
                    self.code,
                    "default_rng() without a seed is OS entropy; pass a "
                    "seed derived from RngFactory",
                    node,
                )


# ---------------------------------------------------------------------------
# RL002 — unit conversions
# ---------------------------------------------------------------------------

#: Literal factors that smell like a bits<->bytes conversion.
_EIGHT = (8, 8.0)
#: Literal factors that smell like a kilo/mega/giga unit conversion.
_THOUSANDS = (1_000, 1_000.0, 1e6, 1_000_000, 1e9, 1_000_000_000)
#: Identifier fragments marking a value as carrying a rate or volume unit.
_UNIT_TOKENS = (
    "bps", "bytes", "bits", "kbps", "mbps", "gbps", "rate", "size",
)

#: Parameter/argument suffix -> unit class, for mismatch detection.
_SUFFIX_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("_bps", "rate (bits/second)"),
    ("_bytes", "volume (bytes)"),
    ("_seconds", "time (seconds)"),
    ("_s", "time (seconds)"),
)


def _unit_class(identifier: str) -> Optional[str]:
    lowered = identifier.lower()
    for suffix, cls in _SUFFIX_CLASSES:
        if lowered.endswith(suffix):
            return cls
    return None


def _mentions_unit(node: ast.AST) -> bool:
    return any(
        any(token in identifier.lower() for token in _UNIT_TOKENS)
        for identifier in identifiers_in(node)
    )


@rule
class UnitsRule(Rule):
    """Keep every bytes<->bits<->rate conversion inside util/units.py."""

    code = "RL002"
    title = "unit conversions must go through repro.util.units"
    scope = "src/repro (all but util/units.py itself)"
    rationale = (
        "The code base keeps exactly one place where a factor of 8 can "
        "hide; an inline * 8.0 or / 1e6 is where bps/bytes confusion "
        "(and silently wrong headline numbers) start."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        # units.py is the one module allowed to spell the factors out.
        return context.rel_parts[-2:] != ("util", "units.py")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                yield from self._check_binop(context, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node)

    def _check_binop(
        self, context: ModuleContext, node: ast.BinOp
    ) -> Iterator[Finding]:
        for literal, other in (
            (node.right, node.left),
            (node.left, node.right),
        ):
            if not isinstance(literal, ast.Constant):
                continue
            value = literal.value
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if isinstance(other, (ast.Constant, ast.List, ast.Tuple)) and (
                not isinstance(other, ast.Constant)
                or isinstance(other.value, (str, bytes))
            ):
                # Sequence repetition ("-" * 8, [0] * 8) is not a unit
                # conversion.
                return
            if value in _EIGHT:
                yield context.finding(
                    self.code,
                    "literal factor of 8: route bytes<->bits through "
                    "repro.util.units (bytes_to_bits, transfer_rate, "
                    "transfer_seconds, transfer_volume)",
                    node,
                )
            elif value in _THOUSANDS and _mentions_unit(other):
                yield context.finding(
                    self.code,
                    f"literal factor {value:g} on a unit-carrying value: "
                    "use repro.util.units (kbps/mbps/rate_to_mbps/"
                    "bytes_to_megabytes)",
                    node,
                )
            # Only report once per BinOp even if both sides are literals.
            return

    def _check_call(
        self, context: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            expected = _unit_class(keyword.arg)
            passed_name = terminal_identifier(keyword.value)
            if not expected or not passed_name:
                continue
            actual = _unit_class(passed_name)
            if actual is not None and actual != expected:
                yield context.finding(
                    self.code,
                    f"argument {keyword.arg!r} expects a {expected} but "
                    f"receives {passed_name!r}, which is named as a "
                    f"{actual}",
                    keyword.value,
                )


# ---------------------------------------------------------------------------
# RL003 — experiment registry contract
# ---------------------------------------------------------------------------

#: Modules under repro/experiments that are infrastructure, not
#: experiments (kept in sync with registry._NON_EXPERIMENT_MODULES).
_NON_EXPERIMENT_MODULES = frozenset(
    {
        "__init__.py",
        "catalogue.py",
        "formatting.py",
        "registry.py",
        "report.py",
        "runner.py",
        "wild.py",
    }
)

_REQUIRED_METADATA = ("title", "claims")


def _experiment_decorator(node: ast.AST) -> Optional[ast.Call]:
    if isinstance(node, ast.Call) and terminal_identifier(node.func) == (
        "experiment"
    ):
        return node
    return None


@rule
class RegistryContractRule(Rule):
    """Every experiment module registers exactly one documented run()."""

    code = "RL003"
    title = "experiment modules must honour the @experiment contract"
    scope = "experiments/*.py (non-infrastructure modules)"
    rationale = (
        "The CLI, the report generator and the benchmark suite are all "
        "thin registry consumers; a module with zero or two experiments, "
        "missing claims, or a run() that returns nothing breaks every "
        "one of them at once."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        parts = context.rel_parts
        return (
            len(parts) == 2
            and parts[0] == "experiments"
            and parts[1] not in _NON_EXPERIMENT_MODULES
        )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        decorated: List[Tuple[ast.FunctionDef, ast.Call]] = []
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for decorator in node.decorator_list:
                call = _experiment_decorator(decorator)
                if call is not None:
                    decorated.append((node, call))
        if not decorated:
            yield context.finding(
                self.code,
                "experiment module defines no @experiment-decorated run "
                "function (infrastructure modules belong in the "
                "registry's exempt list)",
                context.tree.body[0] if context.tree.body else context.tree,
            )
            return
        if len(decorated) > 1:
            for func, _ in decorated[1:]:
                yield context.finding(
                    self.code,
                    "experiment module registers more than one "
                    "@experiment (one module, one experiment)",
                    func,
                )
        for func, call in decorated:
            yield from self._check_metadata(context, call)
            yield from self._check_returns(context, func)

    def _check_metadata(
        self, context: ModuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        for name in _REQUIRED_METADATA:
            value = keywords.get(name)
            if value is None:
                yield context.finding(
                    self.code,
                    f"@experiment is missing the {name!r} keyword "
                    "(the report and `repro list` both render it)",
                    call,
                )
            elif isinstance(value, ast.Constant) and (
                not isinstance(value.value, str) or not value.value.strip()
            ):
                yield context.finding(
                    self.code,
                    f"@experiment {name!r} must be a non-empty string",
                    value,
                )

    def _check_returns(
        self, context: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Walk the function body without descending into nested defs:
        # their returns are not run()'s returns.
        returns_value = False
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if (
                isinstance(node, ast.Return)
                and node.value is not None
                and not (
                    isinstance(node.value, ast.Constant)
                    and node.value.value is None
                )
            ):
                returns_value = True
                break
            stack.extend(ast.iter_child_nodes(node))
        if not returns_value:
            yield context.finding(
                self.code,
                f"run function {func.name!r} never returns a result "
                "object; the registry contract requires render()/"
                "to_dict()-capable (jsonable-safe) returns",
                func,
            )


# ---------------------------------------------------------------------------
# RL004 — exception hygiene
# ---------------------------------------------------------------------------

_BLIND_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _handler_exception_names(handler: ast.ExceptHandler) -> Set[str]:
    if handler.type is None:
        return set()
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return {terminal_identifier(node) for node in nodes}


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises, logs, or touches the exception."""
    bound = handler.name
    for node in handler.body:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Name) and child.id == bound:
                return True
            if (
                isinstance(child, (ast.Name, ast.Attribute))
                and terminal_identifier(child)
                in ("traceback", "format_exc", "print_exc", "exception")
            ):
                return True
    return False


@rule
class ExceptionHygieneRule(Rule):
    """No swallowed blind excepts in recovery-critical paths."""

    code = "RL004"
    title = "scheduler/runner/resilience code must not swallow exceptions"
    rationale = (
        "The churn-tolerance layer recovers from faults by re-raising "
        "and re-queueing; a bare except that eats a policy bug turns a "
        "loud crash into silently lost transfer items. The same goes "
        "for tests and benchmarks: a swallowed assertion failure is a "
        "test that can never fail."
    )
    scope = (
        "core/scheduler, core/resilience.py, experiments/runner.py, "
        "netsim/faults.py, hunt/run.py, hunt/session.py; tests/, "
        "benchmarks/"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        parts = context.rel_parts
        return (
            context.root in ("tests", "benchmarks")
            or parts[:2] == ("core", "scheduler")
            or parts == ("core", "resilience.py")
            or parts == ("experiments", "runner.py")
            or parts == ("netsim", "faults.py")
            # The hunter's executor distinguishes engine crashes (oracle
            # evidence) from its own bugs; a swallowed except would file
            # real defects as clean runs.
            or parts == ("hunt", "run.py")
            or parts == ("hunt", "session.py")
        )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(context, node)
                yield from self._check_raises(context, node)

    def _check_handler(
        self, context: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield context.finding(
                self.code,
                "bare `except:` catches SystemExit and KeyboardInterrupt; "
                "name the exceptions this path can actually recover from",
                handler,
            )
            return
        blind = _handler_exception_names(handler) & _BLIND_EXCEPTION_NAMES
        if blind and not _handler_uses_exception(handler):
            caught = "/".join(sorted(blind))
            yield context.finding(
                self.code,
                f"blind `except {caught}` swallows the failure; re-raise, "
                "log the traceback, or narrow the exception type",
                handler,
            )

    def _check_raises(
        self, context: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        # Walk the handler body without descending into nested try
        # blocks (their handlers are visited on their own) or nested
        # function definitions (which may raise outside any handler).
        stack: List[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if (
                isinstance(node, ast.Raise)
                and isinstance(node.exc, ast.Call)
                and node.cause is None
            ):
                yield context.finding(
                    self.code,
                    "raising a new exception inside an except block "
                    "without `from` loses the original cause; use "
                    "`raise ... from exc` (or `from None` to hide it "
                    "on purpose)",
                    node,
                )
            stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RL005 — float equality on clocks and volumes
# ---------------------------------------------------------------------------

#: Whole identifier words that mark a simulated-clock value.
_CLOCK_WORDS = frozenset(
    {"time", "clock", "eta", "deadline", "now", "elapsed"}
)
#: Substrings that mark a byte-volume value.
_VOLUME_FRAGMENTS = ("bytes", "volume")


def _is_float_sensitive(node: ast.AST) -> bool:
    identifier = terminal_identifier(node).lower()
    if not identifier:
        return False
    if any(fragment in identifier for fragment in _VOLUME_FRAGMENTS):
        return True
    return bool(_CLOCK_WORDS & set(identifier.split("_")))


def _is_non_numeric_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        isinstance(node.value, (str, bool)) or node.value is None
    )


@rule
class FloatEqualityRule(Rule):
    """No == on simulated-clock or byte-volume floats."""

    code = "RL005"
    title = "compare clocks and byte volumes with a tolerance, not =="
    scope = "src/repro (all but util/, lint/); tests/, benchmarks/"
    rationale = (
        "The fluid engine advances by accumulated float arithmetic; an "
        "exact == on a clock or a transferred-bytes counter is a "
        "latent off-by-epsilon bug. Use math.isclose or the engine's "
        "boundary epsilon. In tests and benchmarks, equality inside an "
        "`assert` is the determinism-pin idiom (byte-identical replay) "
        "and stays exempt; only comparisons driving control flow are "
        "flagged there."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        # Everywhere except util/ (validators legitimately compare
        # exact sentinels) and the lint framework itself.
        parts = context.rel_parts
        return parts[:1] not in (("util",), ("lint",))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        exempt: Set[int] = set()
        if context.root in ("tests", "benchmarks"):
            # assert result.total_time == 8.0 pins a deterministic
            # value on purpose; exempt every node under an assert.
            for node in ast.walk(context.tree):
                if isinstance(node, ast.Assert):
                    exempt.update(id(child) for child in ast.walk(node))
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare) or id(node) in exempt:
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_non_numeric_literal(left) or _is_non_numeric_literal(
                    right
                ):
                    continue
                sensitive = next(
                    (
                        side
                        for side in (left, right)
                        if _is_float_sensitive(side)
                    ),
                    None,
                )
                if sensitive is None:
                    continue
                name = terminal_identifier(sensitive)
                operator = "==" if isinstance(op, ast.Eq) else "!="
                yield context.finding(
                    self.code,
                    f"exact {operator} comparison on {name!r} (a "
                    "simulated clock or byte volume); use math.isclose "
                    "or an epsilon",
                    node,
                )


# ---------------------------------------------------------------------------
# RL006 — wire parse paths raise the typed ProtocolError taxonomy
# ---------------------------------------------------------------------------

#: The taxonomy defined in repro/proto/errors.py.
_PROTOCOL_ERROR_NAMES = frozenset(
    {
        "ProtocolError",
        "WireError",
        "FramingError",
        "StallError",
        "PlaylistError",
        "MultipartError",
    }
)

#: A function is a parse path when its name (underscores stripped)
#: starts with one of these verbs.
_PARSE_PREFIXES = ("parse", "decode", "read", "recv", "check")


def _is_parse_path(name: str) -> bool:
    stripped = name.lstrip("_")
    return any(stripped.startswith(prefix) for prefix in _PARSE_PREFIXES)


@rule
class ProtocolTaxonomyRule(Rule):
    """Parsers in proto/ and web/ raise only ProtocolError subclasses."""

    code = "RL006"
    title = "wire parse paths must raise ProtocolError subclasses"
    scope = "proto, web (parse/decode/read/recv/check functions)"
    rationale = (
        "The fuzz harness and every caller on the data path rely on one "
        "contract: feeding a parser arbitrary bytes either succeeds or "
        "raises a typed ProtocolError. A parse function that raises a "
        "bare ValueError/KeyError escapes every `except ProtocolError` "
        "and takes the proxy down on hostile input."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return _in_packages(context, ("proto", "web"))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_parse_path(node.name):
                yield from self._check_function(context, node)

    def _check_function(
        self, context: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Walk the body without descending into nested defs: a nested
        # parse-named helper is visited by the outer walk on its own.
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Raise) and node.exc is not None:
                raised = (
                    node.exc.func
                    if isinstance(node.exc, ast.Call)
                    else node.exc
                )
                name = terminal_identifier(raised)
                if name and name not in _PROTOCOL_ERROR_NAMES:
                    yield context.finding(
                        self.code,
                        f"parse path {func.name!r} raises {name}; wire "
                        "parsers must raise a ProtocolError subclass "
                        "(repro.proto.errors) so callers can catch the "
                        "taxonomy",
                        node,
                    )
            stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RL007 — public API surfaces carry docstrings
# ---------------------------------------------------------------------------

#: Top-level packages whose whole public surface is documented.
_DOCSTRING_PACKAGES = ("core", "obs", "hunt", "fleet")

#: Individual modules outside those packages held to the same bar.
_DOCSTRING_MODULES = (
    ("experiments", "registry.py"),
    ("experiments", "runner.py"),
)


def _has_summary_line(node: ast.AST) -> bool:
    """Whether ``node``'s docstring opens with a non-empty summary."""
    doc = ast.get_docstring(node, clean=False)  # type: ignore[arg-type]
    if not doc:
        return False
    first = doc.splitlines()[0].strip()
    return bool(first)


@rule
class PublicDocstringRule(Rule):
    """Public defs in the documented packages explain themselves."""

    code = "RL007"
    title = "public functions and classes need a one-line docstring summary"
    rationale = (
        "docs/ARCHITECTURE.md and docs/TRACE_SCHEMA.md point readers at "
        "the code for detail; that only works if every public surface in "
        "core/, obs/ and the experiment engine states its contract. A "
        "docstring whose first line is empty renders as a blank summary "
        "in help() and the generated docs. Test and benchmark modules "
        "carry a module docstring stating what they pin down."
    )
    scope = (
        "core, obs, hunt, fleet, experiments registry+runner; tests/, "
        "benchmarks/ (module docstring only)"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        parts = context.rel_parts
        return (
            context.root in ("tests", "benchmarks")
            or _in_packages(context, _DOCSTRING_PACKAGES)
            or parts[:2] in _DOCSTRING_MODULES
        )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        if context.root in ("tests", "benchmarks"):
            # Outside the package tree the bar is one module docstring:
            # what does this file pin down, and against what drift?
            if not _has_summary_line(context.tree):
                anchor: ast.AST = (
                    context.tree.body[0]
                    if context.tree.body
                    else context.tree
                )
                yield context.finding(
                    self.code,
                    f"{context.root} module has no docstring summary; "
                    "state in one line what it pins down",
                    anchor,
                )
            return
        # Module level and class level only: nested helpers are
        # implementation detail, and dunder/underscore names are private
        # by convention.
        yield from self._check_body(context, context.tree.body, scope="")
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef) and not node.name.startswith(
                "_"
            ):
                yield from self._check_body(
                    context, node.body, scope=f"{node.name}."
                )

    def _check_body(
        self,
        context: ModuleContext,
        body: Sequence[ast.stmt],
        scope: str,
    ) -> Iterator[Finding]:
        for node in body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if _has_summary_line(node):
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield context.finding(
                self.code,
                f"public {kind} {scope}{node.name!r} has no docstring "
                "summary; add one line stating its contract",
                node,
            )


# ---------------------------------------------------------------------------
# RL012 — blocking socket ops carry explicit timeouts
# ---------------------------------------------------------------------------

#: Socket methods that block indefinitely on an untimed socket.
_BLOCKING_SOCKET_OPS = frozenset({"accept", "connect", "recv", "sendall"})


@rule
class SocketTimeoutRule(Rule):
    """Blocking socket ops in proto/ and service/ must be time-bounded."""

    code = "RL012"
    title = "blocking socket ops need a socket with an explicit timeout"
    scope = "proto, service"
    rationale = (
        "Every hang the chaos harness ever reproduced came down to one "
        "shape: a connect/recv/accept/sendall on a socket in the default "
        "blocking mode, pinned forever by a peer that said nothing. In "
        "the live packages (proto/, service/) every socket must get "
        "settimeout() — or be created by socket.create_connection(..., "
        "timeout=...) — in the same module before a blocking op runs on "
        "it. Borrowed sockets whose bound provably lives in the caller "
        "carry a justified `# repro-lint: disable=RL012`."
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return _in_packages(context, ("proto", "service"))

    @staticmethod
    def _receiver(node: ast.AST) -> str:
        """The terminal identifier a socket op is invoked on."""
        return terminal_identifier(node)

    def _safe_receivers(self, tree: ast.Module) -> Set[str]:
        """Names that provably carry a timeout somewhere in the module.

        A name is safe when it ever appears as the receiver of a
        ``settimeout(...)`` call, or is ever bound (assignment or
        ``with ... as``) to a call that either passes a ``timeout=``
        keyword or is a ``create_connection`` (whose timeout the next
        check enforces separately). The analysis is module-wide rather
        than flow-sensitive: the rule is a tripwire for sockets nobody
        ever bounds, not a proof of per-path ordering.
        """
        safe: Set[str] = set()

        def bind(target: ast.AST, value: ast.AST) -> None:
            if not isinstance(value, ast.Call):
                return
            timed = any(
                keyword.arg == "timeout" for keyword in value.keywords
            ) or terminal_identifier(value.func) == "create_connection"
            if not timed:
                return
            name = self._receiver(target)
            if name:
                safe.add(name)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "settimeout"
                ):
                    name = self._receiver(node.func.value)
                    if name:
                        safe.add(name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    bind(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bind(node.target, node.value)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    bind(node.optional_vars, node.context_expr)
        return safe

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        safe = self._safe_receivers(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                terminal_identifier(node.func) == "create_connection"
                and not any(
                    keyword.arg == "timeout"
                    for keyword in node.keywords
                )
            ):
                yield context.finding(
                    self.code,
                    "create_connection without timeout= blocks forever "
                    "on an unresponsive peer; pass an explicit timeout",
                    node,
                )
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            op = node.func.attr
            if op not in _BLOCKING_SOCKET_OPS:
                continue
            if op == "connect" and not node.args:
                # socket.connect always takes an address; a no-arg
                # connect() is some other object's method.
                continue
            name = self._receiver(node.func.value)
            if not name or name in safe:
                continue
            yield context.finding(
                self.code,
                f"blocking {op}() on {name!r}, which never gets "
                "settimeout() in this module; an unresponsive peer "
                "would pin this thread forever",
                node,
            )
