"""Command-line interface.

::

    python -m repro list                  # experiment catalogue
    python -m repro run fig06             # one experiment, printed
    python -m repro run --all --jobs 4    # everything, in parallel
    python -m repro run fig10 --json      # structured result on stdout
    python -m repro locations             # the location presets
    python -m repro pilot --households 30
    python -m repro report [PATH]         # regenerate EXPERIMENTS.md

Experiments run at their registered benchmark sizes (``--quick`` for the
reduced smoke sizes); ``--seed``/``--repetitions`` override them for the
experiments whose ``run()`` accepts those parameters. Results are cached
in ``.repro_cache/`` keyed by (experiment id, parameters, source digest);
``--no-cache`` bypasses the cache entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.experiments import registry, runner
from repro.netsim.topology import (
    EVALUATION_LOCATIONS,
    LocationProfile,
    MEASUREMENT_LOCATIONS,
)
from repro.util.units import rate_to_mbps


def _cmd_list(args: argparse.Namespace) -> int:
    specs = registry.all_experiments()
    if args.json:
        catalogue = [
            {
                "id": spec.id,
                "description": spec.description,
                "title": spec.title,
                "paper_ref": spec.paper_ref,
                "bench_params": registry.jsonable(dict(spec.bench_params)),
                "quick_params": registry.jsonable(dict(spec.quick_params)),
            }
            for spec in specs
        ]
        print(json.dumps(catalogue, indent=2))
        return 0
    width = max(len(spec.id) for spec in specs)
    for spec in specs:
        print(f"{spec.id:<{width}}  {spec.description}")
    return 0


def _passthrough_overrides(
    spec: registry.ExperimentSpec, args: argparse.Namespace
) -> Dict[str, Any]:
    """Map ``--seed``/``--repetitions`` onto the spec's parameters.

    ``--seed`` feeds a ``seed`` parameter directly, or a ``seeds``
    parameter as a one-element tuple. Raises ``ValueError`` naming the
    experiment when it accepts neither spelling.
    """
    overrides: Dict[str, Any] = {}
    if args.seed is not None:
        if spec.accepts("seed"):
            overrides["seed"] = args.seed
        elif spec.accepts("seeds"):
            overrides["seeds"] = (args.seed,)
        else:
            raise ValueError(
                f"experiment {spec.id!r} does not accept --seed"
            )
    if args.repetitions is not None:
        if spec.accepts("repetitions"):
            overrides["repetitions"] = args.repetitions
        else:
            raise ValueError(
                f"experiment {spec.id!r} does not accept --repetitions"
            )
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    available = registry.experiment_ids()
    if args.all:
        ids = list(available)
    else:
        ids = args.experiments
    if not ids:
        print(
            "no experiments given; name some ids or pass --all",
            file=sys.stderr,
        )
        return 2
    unknown = [i for i in ids if i not in available]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; available: "
            + ", ".join(available),
            file=sys.stderr,
        )
        return 2

    overrides: Dict[str, Dict[str, Any]] = {}
    for experiment_id in ids:
        spec = registry.get(experiment_id)
        try:
            extra = _passthrough_overrides(spec, args)
        except ValueError as error:
            if not args.all:
                print(str(error), file=sys.stderr)
                return 2
            extra = {}  # --all: apply only where accepted
        if extra:
            overrides[experiment_id] = extra

    cache = None if args.no_cache else runner.ResultCache()
    outcomes = runner.run_experiments(
        ids,
        jobs=args.jobs,
        quick=args.quick,
        overrides=overrides,
        cache=cache,
    )
    if args.json:
        records = [outcome.to_dict() for outcome in outcomes]
        payload = records[0] if len(records) == 1 and not args.all else records
        print(json.dumps(payload, indent=2))
    else:
        for outcome in outcomes:
            if outcome.ok:
                print(outcome.rendered)
            else:
                print(
                    f"[{outcome.experiment_id}] FAILED\n{outcome.error}",
                    file=sys.stderr,
                )
    if args.profile:
        print(_profile_table(outcomes))
    return 0 if all(outcome.ok for outcome in outcomes) else 1


#: Phase keys of :attr:`ExperimentOutcome.profile`, in display order.
_PROFILE_PHASES = ("run_s", "render_s", "serialize_s")


def _profile_table(outcomes: Iterable[runner.ExperimentOutcome]) -> str:
    """Per-phase wall-clock table for ``repro run --profile``.

    Cached outcomes carry no fresh timings and show dashes — re-run with
    ``--no-cache`` to profile them.
    """
    rows = []
    for outcome in outcomes:
        profile = outcome.profile or {}
        cells = [
            f"{profile[phase]:8.3f}" if phase in profile else f"{'-':>8}"
            for phase in _PROFILE_PHASES
        ]
        total = sum(profile.get(phase, 0.0) for phase in _PROFILE_PHASES)
        cells.append(f"{total:8.3f}" if profile else f"{'-':>8}")
        rows.append((outcome.experiment_id, outcome.status, cells))
    width = max([len(r[0]) for r in rows] + [len("experiment")])
    header = (
        f"{'experiment':<{width}}  {'status':<7}"
        + "".join(f"  {name:>8}" for name in (*_PROFILE_PHASES, "total_s"))
    )
    lines = ["", "Phase timings (wall-clock seconds):", header]
    for experiment_id, status, cells in rows:
        lines.append(
            f"{experiment_id:<{width}}  {status:<7}"
            + "".join(f"  {cell}" for cell in cells)
        )
    return "\n".join(lines)


def _print_locations(
    heading: str, locations: Iterable[LocationProfile]
) -> None:
    print(heading)
    for location in locations:
        print(
            f"  {location.name:<10s} "
            f"{rate_to_mbps(location.adsl_down_bps):5.2f}/"
            f"{rate_to_mbps(location.adsl_up_bps):5.2f} Mbps  "
            f"{location.signal_dbm:4.0f} dBm  {location.description}"
        )


def _cmd_locations(_args: argparse.Namespace) -> int:
    _print_locations("Measurement locations (Table 2):", MEASUREMENT_LOCATIONS)
    _print_locations("Evaluation locations (Table 4):", EVALUATION_LOCATIONS)
    return 0


def _cmd_pilot(args: argparse.Namespace) -> int:
    from repro.pilot import PilotStudy, generate_household_workloads

    plans = generate_household_workloads(
        n_households=args.households, seed=args.seed
    )
    report = PilotStudy(plans, seed=args.seed).run()
    print(report.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    cache = None if args.no_cache else runner.ResultCache()
    write_report(args.output, jobs=args.jobs, cache=cache)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of '3GOL: Power-boosting ADSL using 3G "
            "OnLoading' (CoNEXT 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list the experiment catalogue"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="print the catalogue as JSON",
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see list)",
    )
    run_parser.add_argument(
        "--all",
        action="store_true",
        help="run every registered experiment",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (default: 1)",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="print structured results as JSON instead of tables",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the on-disk result cache",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="use each experiment's reduced smoke-test sizes",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the seed (experiments accepting seed/seeds)",
    )
    run_parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override repetitions (experiments accepting it)",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-clock table after the results",
    )
    run_parser.set_defaults(func=_cmd_run)

    sub.add_parser(
        "locations", help="print the location presets"
    ).set_defaults(func=_cmd_locations)

    pilot_parser = sub.add_parser(
        "pilot", help="simulate the 30-household pilot"
    )
    pilot_parser.add_argument("--households", type=int, default=30)
    pilot_parser.add_argument("--seed", type=int, default=0)
    pilot_parser.set_defaults(func=_cmd_pilot)

    report_parser = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md"
    )
    report_parser.add_argument(
        "output", nargs="?", default="EXPERIMENTS.md"
    )
    report_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (default: 1)",
    )
    report_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the on-disk result cache",
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
