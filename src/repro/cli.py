"""Command-line interface.

::

    python -m repro list                 # experiment catalogue
    python -m repro run fig06            # one experiment, printed
    python -m repro locations            # the location presets
    python -m repro pilot --households 30
    python -m repro report [PATH]        # regenerate EXPERIMENTS.md

Experiments run at their benchmark sizes; for custom parameters import
the modules from :mod:`repro.experiments` directly.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Dict, List, Optional, Tuple

from repro.netsim.topology import EVALUATION_LOCATIONS, MEASUREMENT_LOCATIONS

#: Experiment id -> (module name, one-line description). ``run`` calls the
#: module's ``run()`` with defaults and prints ``result.render()``.
EXPERIMENTS: Dict[str, Tuple[str, str]] = {
    "fig01": ("fig01_diurnal", "diurnal wired vs mobile traffic (Fig. 1)"),
    "fig03": ("fig03_aggregate", "aggregate 3G throughput vs devices (Fig. 3)"),
    "fig04": ("fig04_temporal", "throughput by hour, groups of 1/3/5 (Fig. 4)"),
    "fig05": ("fig05_stations", "per-base-station distributions (Fig. 5)"),
    "table02": ("table02_locations", "six locations, three devices (Table 2)"),
    "table03": ("table03_clusters", "per-device rate by cluster size (Table 3)"),
    "fig06": ("fig06_scheduler", "GRD vs RR vs MIN schedulers (Fig. 6)"),
    "table04": ("table04_eval_locations", "evaluation locations (Table 4)"),
    "fig07": ("fig07_prebuffer", "pre-buffering gains (Fig. 7)"),
    "fig08": ("fig08_download", "download-time reductions (Fig. 8)"),
    "fig09": ("fig09_upload", "photo-upload times (Fig. 9)"),
    "fig10": ("fig10_cap_cdf", "CDF of used cap fraction (Fig. 10)"),
    "fig11a": ("fig11a_speedup", "speedup CDF under budget (Fig. 11a)"),
    "fig11b": ("fig11b_load", "onloaded load vs backhaul (Fig. 11b)"),
    "fig11c": ("fig11c_adoption", "traffic increase vs adoption (Fig. 11c)"),
    "sec21": ("sec21_capacity", "capacity back-of-envelope (S2.1)"),
    "sec6est": ("sec6_estimator", "allowance-estimator backtest (S6)"),
    "headline": ("headline", "S5 headline speedups"),
    "ext-lte": ("ext_lte", "extension: 3GOL over LTE (S2.3)"),
    "ext-mptcp": ("ext_mptcp", "extension: the omitted MP-TCP comparison"),
    "ext-playout": ("ext_playout", "extension: playout-phase coverage"),
    "ext-dslam": ("ext_dslam", "extension: DSLAM oversubscription"),
    "ext-estimator": ("ext_estimator", "ablation: estimator design space"),
    "ext-neighborhood": (
        "ext_neighborhood",
        "extension: adopters sharing one cell",
    ),
    "ext-duplication": ("ext_duplication", "ablation: endgame duplication"),
    "ext-min-tuning": ("ext_min_tuning", "ablation: tuning the MIN scheduler"),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, (_, description) in EXPERIMENTS.items():
        print(f"{key:<{width}}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(
            f"unknown experiment {args.experiment!r}; "
            "see `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    module = importlib.import_module(f"repro.experiments.{entry[0]}")
    result = module.run()
    print(result.render())
    return 0


def _cmd_locations(_args: argparse.Namespace) -> int:
    print("Measurement locations (Table 2):")
    for location in MEASUREMENT_LOCATIONS:
        print(
            f"  {location.name:<10s} "
            f"{location.adsl_down_bps / 1e6:5.2f}/"
            f"{location.adsl_up_bps / 1e6:5.2f} Mbps  "
            f"{location.signal_dbm:4.0f} dBm  {location.description}"
        )
    print("Evaluation locations (Table 4):")
    for location in EVALUATION_LOCATIONS:
        print(
            f"  {location.name:<10s} "
            f"{location.adsl_down_bps / 1e6:5.2f}/"
            f"{location.adsl_up_bps / 1e6:5.2f} Mbps  "
            f"{location.signal_dbm:4.0f} dBm  {location.description}"
        )
    return 0


def _cmd_pilot(args: argparse.Namespace) -> int:
    from repro.pilot import PilotStudy, generate_household_workloads

    plans = generate_household_workloads(
        n_households=args.households, seed=args.seed
    )
    report = PilotStudy(plans, seed=args.seed).run()
    print(report.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import main as report_main

    return report_main(["report", args.output])


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of '3GOL: Power-boosting ADSL using 3G "
            "OnLoading' (CoNEXT 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment catalogue").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see list)")
    run_parser.set_defaults(func=_cmd_run)

    sub.add_parser(
        "locations", help="print the location presets"
    ).set_defaults(func=_cmd_locations)

    pilot_parser = sub.add_parser(
        "pilot", help="simulate the 30-household pilot"
    )
    pilot_parser.add_argument("--households", type=int, default=30)
    pilot_parser.add_argument("--seed", type=int, default=0)
    pilot_parser.set_defaults(func=_cmd_pilot)

    report_parser = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md"
    )
    report_parser.add_argument(
        "output", nargs="?", default="EXPERIMENTS.md"
    )
    report_parser.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
