"""Bandwidth shaping for the loopback prototype.

A :class:`TokenBucket` paces byte streams to a configured rate, emulating
the ADSL line and the phones' 3G channels on the loopback interface. The
bucket is thread-safe: several transfers through the same proxy share the
same bucket, which reproduces the capacity-sharing behaviour of the real
links (approximately FIFO rather than max-min, which is close enough at
the granularity the prototype is evaluated at).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Optional

from repro.util.validate import check_positive

#: Chunk size for shaped copies; small enough for smooth pacing at the
#: rates the prototype uses (hundreds of kB/s to a few MB/s).
CHUNK_BYTES = 16 * 1024


class TokenBucket:
    """Thread-safe token bucket: ``consume(n)`` blocks until n bytes may pass.

    ``rate_bytes_per_s`` is the sustained rate; ``burst_bytes`` bounds how
    much can pass instantaneously (defaults to 1/10 s worth of tokens).
    A ``clock``/``sleep`` pair can be injected for deterministic tests.
    """

    def __init__(
        self,
        rate_bytes_per_s: float,
        burst_bytes: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        check_positive("rate_bytes_per_s", rate_bytes_per_s)
        self.rate = float(rate_bytes_per_s)
        self.burst = (
            float(burst_bytes) if burst_bytes is not None else self.rate / 10.0
        )
        if self.burst <= 0.0:
            raise ValueError(f"burst_bytes must be positive, got {burst_bytes}")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def consume(self, nbytes: int) -> None:
        """Block until ``nbytes`` tokens are available, then take them.

        Requests larger than the burst are paid off in instalments so a
        big chunk cannot deadlock against the bucket depth. Residuals
        below a nanobyte are forgiven and waits are floored at a
        microsecond: float subtraction can leave sub-representable
        remainders whose "wait" would not advance the clock at all.
        """
        remaining = float(nbytes)
        while remaining > 1e-9:
            with self._lock:
                now = self._clock()
                self._refill(now)
                take = min(remaining, self._tokens)
                self._tokens -= take
                remaining -= take
                if remaining <= 1e-9:
                    return
                # Out of tokens: wait for the deficit (capped at one burst).
                deficit = min(remaining, self.burst)
                wait = max(deficit / self.rate, 1e-6)
            self._sleep(wait)

    def set_rate(self, rate_bytes_per_s: float) -> None:
        """Change the sustained rate (models varying radio conditions)."""
        check_positive("rate_bytes_per_s", rate_bytes_per_s)
        with self._lock:
            self._refill(self._clock())
            self.rate = float(rate_bytes_per_s)


def shaped_send(
    sock: socket.socket, data: bytes, bucket: Optional[TokenBucket]
) -> None:
    """Send ``data`` over ``sock``, pacing through ``bucket`` if given."""
    view = memoryview(data)
    offset = 0
    while offset < len(view):
        chunk = view[offset : offset + CHUNK_BYTES]
        if bucket is not None:
            bucket.consume(len(chunk))
        # The socket is borrowed: every caller (proxy, origin, service)
        # configures its timeout at accept/connect time, and this
        # module has no sensible bound of its own to impose.
        sock.sendall(chunk)  # repro-lint: disable=RL012
        offset += len(chunk)
