"""The typed protocol-error taxonomy for the 3GOL data path.

Every byte of the prototype's data path flows through the wire parsers
(:mod:`repro.proto.httpwire`, the m3u8 parser in :mod:`repro.web.hls`,
the multipart machinery in :mod:`repro.web.upload`). A malformed,
truncated or adversarial peer must surface as a *typed*, catchable
protocol error — never as a stray ``ValueError`` / ``IndexError`` /
``UnicodeDecodeError`` unwinding a proxy loop. The taxonomy:

* :class:`ProtocolError` — the base every wire-facing parser raises;
* :class:`WireError` — malformed or truncated HTTP wire traffic;
* :class:`FramingError` — message framing lies (bad/duplicate/oversized
  Content-Length, body overrun); a :class:`WireError` subclass so
  existing ``except WireError`` handlers keep working;
* :class:`StallError` — the peer accepted the connection but stopped
  sending before the parser could make progress (per-socket recv
  timeout); also a :class:`WireError` subclass;
* :class:`PlaylistError` — malformed m3u8 playlists;
* :class:`MultipartError` — malformed multipart/form-data bodies.

:class:`PlaylistError` and :class:`MultipartError` additionally subclass
:class:`ValueError` (the ``json.JSONDecodeError`` precedent) so callers
that predate the taxonomy — and tests pinned to the old behaviour —
keep catching them; new code catches :class:`ProtocolError`.

Lint rule RL006 enforces the taxonomy: parse paths under
``repro/proto/`` and ``repro/web/`` may only raise these types.
"""

from __future__ import annotations

__all__ = [
    "FramingError",
    "MultipartError",
    "PlaylistError",
    "ProtocolError",
    "StallError",
    "WireError",
]


class ProtocolError(Exception):
    """Base class: a peer sent traffic the data path cannot accept."""


class WireError(ProtocolError):
    """Malformed or truncated HTTP traffic."""


class FramingError(WireError):
    """The message framing is inconsistent with its declared lengths."""


class StallError(WireError):
    """The peer went silent mid-message (recv timeout expired)."""


class PlaylistError(ProtocolError, ValueError):
    """Malformed m3u8 playlist text."""


class MultipartError(ProtocolError, ValueError):
    """Malformed multipart/form-data body."""
