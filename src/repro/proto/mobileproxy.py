"""The mobile component's proxy, as a real TCP server.

"[The mobile component] implements a proxy that pipes incoming
connections through the 3G network" (§2.4). Here the 3G interface is a
token-bucket shaper: every byte relayed between the LAN-facing socket and
the origin passes through the bucket, so the proxy's throughput is the
emulated channel's. Both directions are shaped (HSDPA down, HSUPA up may
have different buckets).
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Optional, Tuple

from repro.proto import httpwire
from repro.proto.shaping import TokenBucket, shaped_send


class MobileProxy:
    """A forwarding HTTP proxy with per-direction rate shaping."""

    def __init__(
        self,
        origin_address: Tuple[str, int],
        down_bucket: Optional[TokenBucket] = None,
        up_bucket: Optional[TokenBucket] = None,
        name: str = "phone",
    ) -> None:
        self.origin_address = origin_address
        self.down_bucket = down_bucket
        self.up_bucket = up_bucket
        self.name = name
        #: Bytes relayed in each direction, for cap accounting.
        self.bytes_down = 0
        self.bytes_up = 0
        self._counters_lock = threading.Lock()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(32)
        self.host, self.port = self._server.getsockname()
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MobileProxy":
        """Start accepting LAN connections."""
        self._running = True
        threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        ).start()
        return self

    def stop(self) -> None:
        """Stop the proxy."""
        self._running = False
        with contextlib.suppress(OSError):
            self._server.close()

    def __enter__(self) -> "MobileProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the proxy listens on (the LAN side)."""
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        """Pipe one LAN connection's requests through the shaped uplink.

        One upstream connection to the origin per client connection —
        the same connection-per-path model the prototype client uses.
        """
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            upstream.connect(self.origin_address)
            leftover = b""
            while True:
                head, leftover = httpwire.read_until_blank_line(
                    client, leftover
                )
                first, headers = httpwire.parse_head(head)
                length = int(headers.get("content-length", "0"))
                body = httpwire.read_body(client, leftover, length)
                leftover = b""
                # Request (uplink direction: through HSUPA shaping).
                shaped_send(upstream, head + body, self.up_bucket)
                with self._counters_lock:
                    self.bytes_up += len(body)
                # Response (downlink: through HSDPA shaping).
                status, resp_headers, resp_body = httpwire.read_response(
                    upstream
                )
                response = httpwire.render_response(
                    status,
                    "OK" if status == 200 else "Err",
                    resp_body,
                    content_type=resp_headers.get(
                        "content-type", "application/octet-stream"
                    ),
                )
                # Count before sending: the client may observe the full
                # response the instant sendall returns, so post-send
                # accounting would race observers of the counters.
                with self._counters_lock:
                    self.bytes_down += len(resp_body)
                shaped_send(client, response, self.down_bucket)
        except (httpwire.WireError, OSError):
            pass
        finally:
            for sock in (client, upstream):
                with contextlib.suppress(OSError):
                    sock.close()
