"""The mobile component's proxy, as a real TCP server.

"[The mobile component] implements a proxy that pipes incoming
connections through the 3G network" (§2.4). Here the 3G interface is a
token-bucket shaper: every byte relayed between the LAN-facing socket and
the origin passes through the bucket, so the proxy's throughput is the
emulated channel's. Both directions are shaped (HSDPA down, HSUPA up may
have different buckets).

The proxy assumes hostile peers on both sides: reads are bounded and
carry per-socket recv timeouts, and a bad peer degrades exactly one
connection — a malformed request earns a 400, a garbled or stalling
origin earns a 502/504, either lands a structured
:class:`~repro.core.resilience.DegradationLog` entry, and the accept
loop keeps serving every other connection.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from typing import Optional, Tuple

from repro.core.resilience import DegradationLog
from repro.obs.capture import Instrumentation, current as obs_current
from repro.proto import httpwire
from repro.proto.errors import StallError, WireError
from repro.proto.shaping import TokenBucket, shaped_send

#: The accept loop wakes at this cadence to re-check its running flag,
#: so a stop() that races the accept call never strands the thread.
ACCEPT_TICK_S = 0.5


class MobileProxy:
    """A forwarding HTTP proxy with per-direction rate shaping."""

    def __init__(
        self,
        origin_address: Tuple[str, int],
        down_bucket: Optional[TokenBucket] = None,
        up_bucket: Optional[TokenBucket] = None,
        name: str = "phone",
        recv_timeout: float = httpwire.DEFAULT_RECV_TIMEOUT,
        idle_timeout: float = httpwire.DEFAULT_IDLE_TIMEOUT,
        degradation_log: Optional[DegradationLog] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.origin_address = origin_address
        self.down_bucket = down_bucket
        self.up_bucket = up_bucket
        self.name = name
        #: Bound on each upstream (origin-facing) recv gap.
        self.recv_timeout = recv_timeout
        #: Bound on how long a LAN connection may sit idle between
        #: requests before it is reclaimed.
        self.idle_timeout = idle_timeout
        #: Structured log of every per-connection degradation.
        self.degradations = (
            degradation_log if degradation_log is not None else DegradationLog()
        )
        #: Bytes relayed in each direction, for cap accounting.
        self.bytes_down = 0
        self.bytes_up = 0
        self._counters_lock = threading.Lock()
        #: Instrumentation handle; worker threads only touch locked
        #: metric counters (never the tracer) through it.
        self._obs = obs if obs is not None else obs_current()
        self._started_at = time.monotonic()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(32)
        self._server.settimeout(ACCEPT_TICK_S)
        self.host, self.port = self._server.getsockname()
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MobileProxy":
        """Start accepting LAN connections."""
        self._running = True
        threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        ).start()
        return self

    def stop(self) -> None:
        """Stop the proxy."""
        self._running = False
        with contextlib.suppress(OSError):
            self._server.close()

    def __enter__(self) -> "MobileProxy":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the proxy listens on (the LAN side)."""
        return (self.host, self.port)

    def _now(self) -> float:
        """Seconds since the proxy was built (degradation timestamps)."""
        return time.monotonic() - self._started_at

    # ------------------------------------------------------------------
    # Relaying
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue  # tick: re-check the running flag
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        """Pipe one LAN connection's requests through the shaped uplink.

        One upstream connection to the origin per client connection —
        the same connection-per-path model the prototype client uses.
        Protocol failures degrade *this connection only*: the client
        gets an error response naming the failure, a structured event
        lands in :attr:`degradations`, and the proxy keeps serving.
        """
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            # Every blocking op on either socket is timeout-bounded
            # (RL012): the LAN side by the idle/recv timeouts, the
            # origin side by the recv timeout, both possibly clamped
            # by a propagated deadline below.
            client.settimeout(self.idle_timeout)
            upstream.settimeout(self.recv_timeout)
            try:
                upstream.connect(self.origin_address)
            except OSError as exc:
                self.degradations.record(
                    kind="peer-unreachable",
                    time=self._now(),
                    path_name=self.name,
                    detail=f"origin connect failed: {exc!r}",
                )
                with contextlib.suppress(OSError):
                    client.sendall(
                        httpwire.render_response(502, "Bad Gateway")
                    )
                return
            leftover = b""
            while True:
                # Request from the LAN client (idle-bounded).
                try:
                    head, leftover = httpwire.read_until_blank_line(
                        client, leftover, timeout=self.idle_timeout
                    )
                    first, headers = httpwire.parse_head(head)
                    length = httpwire.parse_content_length(headers)
                    deadline_s = httpwire.parse_deadline(headers)
                    body = httpwire.read_body(
                        client,
                        leftover,
                        length,
                        timeout=self._clamp(deadline_s),
                    )
                except WireError as exc:
                    self._reject_client(client, exc)
                    return
                leftover = b""
                # A spent deadline budget is refused up front: the
                # client's clock already ran out, so relaying would
                # only burn the shaped uplink on an answer nobody
                # waits for.
                if deadline_s is not None and deadline_s <= 0.0:
                    self._reject_deadline(client, first, deadline_s)
                    return
                # Relay upstream and read the origin's answer; a bad or
                # stalling origin fails this transfer with a 502/504.
                try:
                    shaped_send(upstream, head + body, self.up_bucket)
                    with self._counters_lock:
                        self.bytes_up += len(body)
                    if self._obs is not None:
                        self._obs.count(
                            "proxy.bytes",
                            amount=float(len(body)),
                            direction="up",
                        )
                    status, resp_headers, resp_body = httpwire.read_response(
                        upstream, timeout=self._clamp(deadline_s)
                    )
                except (WireError, OSError) as exc:
                    self._reject_upstream(client, first, exc)
                    return
                response = httpwire.render_response(
                    status,
                    "OK" if status == 200 else "Err",
                    resp_body,
                    content_type=resp_headers.get(
                        "content-type", "application/octet-stream"
                    ),
                )
                # Count before sending: the client may observe the full
                # response the instant sendall returns, so post-send
                # accounting would race observers of the counters.
                with self._counters_lock:
                    self.bytes_down += len(resp_body)
                if self._obs is not None:
                    self._obs.count(
                        "proxy.bytes",
                        amount=float(len(resp_body)),
                        direction="down",
                    )
                shaped_send(client, response, self.down_bucket)
        except OSError:
            # The LAN client vanished mid-exchange; nothing to answer.
            pass
        finally:
            for sock in (client, upstream):
                with contextlib.suppress(OSError):
                    sock.close()

    def _clamp(self, deadline_s: Optional[float]) -> float:
        """Per-read timeout, clamped to the propagated deadline budget."""
        return httpwire.clamp_timeout(self.recv_timeout, deadline_s)

    def _reject_deadline(
        self, client: socket.socket, request_line: str, deadline_s: float
    ) -> None:
        """The propagated deadline is already spent: 504 without relay."""
        parts = request_line.split(" ")
        self.degradations.record(
            kind="deadline-expired",
            time=self._now(),
            path_name=self.name,
            item_label=parts[1] if len(parts) > 1 else "",
            detail=f"deadline budget spent ({deadline_s:.3f}s remaining)",
        )
        with contextlib.suppress(OSError):
            client.sendall(
                httpwire.render_response(504, "Deadline Expired")
            )

    def _reject_client(self, client: socket.socket, exc: WireError) -> None:
        """A malformed/stalled LAN request: 400 this connection only.

        A clean keep-alive close ("connection closed before request")
        is the normal end of a persistent connection, not a
        degradation.
        """
        if "closed before request" in str(exc):
            return
        self.degradations.record(
            kind="bad-peer",
            time=self._now(),
            path_name=self.name,
            detail=f"malformed LAN request: {exc!r}",
        )
        with contextlib.suppress(OSError):
            client.sendall(httpwire.render_response(400, "Bad Request"))

    def _reject_upstream(
        self, client: socket.socket, request_line: str, exc: Exception
    ) -> None:
        """A garbled or silent origin: 502/504 this transfer only."""
        stalled = isinstance(exc, (StallError, socket.timeout))
        self.degradations.record(
            kind="stall" if stalled else "bad-peer",
            time=self._now(),
            path_name=self.name,
            item_label=request_line.split(" ")[1]
            if len(request_line.split(" ")) > 1
            else "",
            detail=f"upstream failure: {exc!r}",
        )
        status, reason = (
            (504, "Gateway Timeout") if stalled else (502, "Bad Gateway")
        )
        with contextlib.suppress(OSError):
            client.sendall(httpwire.render_response(status, reason))
