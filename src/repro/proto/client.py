"""The prototype's client component: real threads, real sockets.

Drives the *same* :class:`~repro.core.scheduler.base.SchedulingPolicy`
implementations as the simulator over actual TCP connections: one worker
thread per path, each holding a persistent connection to its shaped proxy
(the gateway pipe or a phone's 3G proxy). The greedy policy's endgame
duplication works exactly as in §4.1.1 — when the first copy of an item
completes, the losing copies are cancelled (their workers notice a cancel
flag between receive chunks and drop the connection).

A bad peer degrades one *path*, not the transaction: a stalling or
garbage-speaking endpoint times out / errors its single in-flight
transfer, the item is re-offered to the policy exactly as the
simulator's runner does after a path fault
(:meth:`~repro.core.scheduler.base.SchedulingPolicy.on_item_failed`),
a structured :class:`~repro.core.resilience.DegradationLog` entry is
recorded, and the transfer continues over the surviving paths. The
transaction fails only when *every* path is dead.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.items import Transaction, TransferItem
from repro.core.resilience import DegradationLog
from repro.core.scheduler.base import PathWorker, SchedulingPolicy
from repro.netsim.link import Link
from repro.netsim.path import NetworkPath
from repro.obs.capture import Instrumentation, current as obs_current
from repro.proto import httpwire
from repro.proto.errors import StallError

RECV_CHUNK = 64 * 1024


@dataclass
class ItemTiming:
    """Completion record for one item fetched by the prototype."""

    label: str
    path_name: str
    size_bytes: int
    started_at: float
    completed_at: float
    copies: int = 1

    @property
    def duration(self) -> float:
        """Seconds from first scheduling of this item to completion."""
        return self.completed_at - self.started_at


@dataclass
class ThreadedTransferReport:
    """Outcome of one prototype transaction."""

    total_time: float
    records: Dict[str, ItemTiming]
    wasted_bytes: int
    bytes_by_path: Dict[str, int]

    @property
    def payload_bytes(self) -> int:
        """Bytes of the winning copies."""
        return sum(r.size_bytes for r in self.records.values())


class _Endpoint:
    """One path: a named, persistent connection target."""

    def __init__(
        self,
        name: str,
        address: Tuple[str, int],
        recv_timeout: float = httpwire.DEFAULT_RECV_TIMEOUT,
    ) -> None:
        self.name = name
        self.address = address
        self.recv_timeout = recv_timeout
        self.cancel = threading.Event()
        self.sock: Optional[socket.socket] = None

    def connect(self) -> socket.socket:
        """(Re)open the persistent connection.

        The timeout governs every subsequent recv on the socket, so a
        peer that accepts the connection and then goes silent raises
        ``socket.timeout`` instead of hanging the worker forever.
        """
        if self.sock is not None:
            with contextlib.suppress(OSError):
                self.sock.close()
        self.sock = socket.create_connection(
            self.address, timeout=self.recv_timeout
        )
        return self.sock

    def close(self) -> None:
        """Drop the connection."""
        if self.sock is not None:
            with contextlib.suppress(OSError):
                self.sock.close()
            self.sock = None


class _Cancelled(Exception):
    """Raised inside a worker when its in-flight copy lost the race."""


def _read_response_cancellable(
    sock: socket.socket, cancel: threading.Event
) -> Tuple[int, bytes]:
    """Read one response, checking the cancel flag between chunks."""
    data = b""
    while b"\r\n\r\n" not in data:
        if cancel.is_set():
            # Control flow, not a parse failure: the copy lost the race.
            raise _Cancelled()  # repro-lint: disable=RL006
        if len(data) > httpwire.MAX_HEADER_BYTES:
            raise httpwire.WireError(
                f"header section exceeds {httpwire.MAX_HEADER_BYTES} bytes"
            )
        chunk = sock.recv(RECV_CHUNK)
        if not chunk:
            raise httpwire.WireError("closed mid-header")
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    if len(head) + 4 > httpwire.MAX_HEADER_BYTES:
        raise httpwire.WireError(
            f"header section exceeds {httpwire.MAX_HEADER_BYTES} bytes"
        )
    first, headers = httpwire.parse_head(head + b"\r\n\r\n")
    status = httpwire.parse_status_line(first)
    length = httpwire.parse_content_length(headers)
    while len(body) < length:
        if cancel.is_set():
            raise _Cancelled()  # repro-lint: disable=RL006
        chunk = sock.recv(RECV_CHUNK)
        if not chunk:
            raise httpwire.WireError("closed mid-body")
        body += chunk
    return status, body


class PrototypeClient:
    """Runs transactions over real shaped paths with a scheduling policy."""

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, Tuple[str, int]]],
        recv_timeout: float = httpwire.DEFAULT_RECV_TIMEOUT,
        degradation_log: Optional[DegradationLog] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.recv_timeout = recv_timeout
        #: Structured log of per-path degradations across transactions.
        self.degradations = (
            degradation_log if degradation_log is not None else DegradationLog()
        )
        #: Instrumentation handle; worker threads only touch locked
        #: metric counters (never the tracer) through it.
        self._obs = obs if obs is not None else obs_current()
        self.endpoints = [
            _Endpoint(name, addr, recv_timeout=recv_timeout)
            for name, addr in endpoints
        ]

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def run_download(
        self,
        transaction: Transaction,
        policy: SchedulingPolicy,
        host: str = "origin",
        timeout: float = 120.0,
        deadline_s: Optional[float] = None,
    ) -> ThreadedTransferReport:
        """Fetch every item (item labels are URL paths) via GET.

        ``deadline_s`` is an end-to-end budget: each request carries
        the remaining budget in the deadline header so every hop
        (proxy, service, origin) clamps its own reads to it, and per-
        socket recv timeouts shrink with the budget. ``None`` keeps
        the per-transfer timeouts alone.
        """
        return self._run(
            transaction, policy, "GET", host, timeout,
            deadline_s=deadline_s,
        )

    def run_upload(
        self,
        transaction: Transaction,
        policy: SchedulingPolicy,
        host: str = "origin",
        timeout: float = 120.0,
        upload_path: str = "/upload",
        deadline_s: Optional[float] = None,
    ) -> ThreadedTransferReport:
        """POST every item's payload (deterministic filler bytes)."""
        return self._run(
            transaction, policy, "POST", host, timeout, upload_path,
            deadline_s=deadline_s,
        )

    # ------------------------------------------------------------------
    # Machinery
    # ------------------------------------------------------------------
    def _run(
        self,
        transaction: Transaction,
        policy: SchedulingPolicy,
        method: str,
        host: str,
        timeout: float,
        upload_path: str = "/upload",
        deadline_s: Optional[float] = None,
    ) -> ThreadedTransferReport:
        lock = threading.Lock()
        work_available = threading.Condition(lock)
        started = time.monotonic()

        workers = []
        dummy_links = [Link("wire", 1.0)]
        for index, endpoint in enumerate(self.endpoints):
            # PathWorker wants a NetworkPath; give it a nominal one (the
            # policies only read names/estimates, and MIN's prior covers
            # the missing capacity knowledge — as for a real client).
            path = NetworkPath(endpoint.name, dummy_links)
            workers.append(PathWorker(index=index, path=path))

        items_total = len(transaction)
        completed: Dict[str, ItemTiming] = {}
        scheduled_at: Dict[str, float] = {}
        copies_inflight: Dict[str, List[int]] = {}
        copy_counts: Dict[str, int] = {}
        wasted = 0
        bytes_by_path: Dict[str, int] = {
            endpoint.name: 0 for endpoint in self.endpoints
        }
        failure: List[BaseException] = []

        policy.initialize(workers, transaction.items)

        def now() -> float:
            return time.monotonic() - started

        def fail_path(
            index: int,
            exc: Exception,
            item_label: str = "",
        ) -> None:
            """Take one dead path out of the transfer set (lock held).

            Mirrors the simulator runner's ``remove_path``: mark the
            worker disabled so policies stop counting it, log a
            structured event, and abort the whole transaction only when
            no live path remains to carry the residual work.
            """
            worker = workers[index]
            worker.disabled = True
            worker.current_item = None
            worker.remaining_bytes = 0.0
            stalled = isinstance(exc, (StallError, socket.timeout))
            self.degradations.record(
                kind="stall" if stalled else "path-fault",
                time=now(),
                path_name=self.endpoints[index].name,
                item_label=item_label,
                detail=f"{type(exc).__name__}: {exc}",
            )
            if not any(w.available for w in workers) and (
                len(completed) < items_total
            ):
                failure.append(exc)
            work_available.notify_all()

        def worker_loop(index: int) -> None:
            nonlocal wasted
            endpoint = self.endpoints[index]
            worker = workers[index]
            try:
                endpoint.connect()
            except OSError as exc:
                with lock:
                    fail_path(index, exc)
                    # Re-deal this path's share of the work (the policy
                    # saw the full worker set at initialize time).
                    policy.on_membership_change(tuple(workers), now())
                return
            while True:
                with lock:
                    if failure or len(completed) >= items_total:
                        return
                    worker.current_item = None
                    worker.remaining_bytes = 0.0
                    assignment = policy.next_item(worker, now())
                    if assignment is None:
                        # Nothing for this path right now; wait for a
                        # state change (someone completing) and retry.
                        work_available.wait(timeout=0.2)
                        continue
                    item = assignment.item
                    if item.label in completed:
                        continue
                    worker.current_item = item
                    worker.remaining_bytes = item.size_bytes
                    scheduled_at.setdefault(item.label, now())
                    copies_inflight.setdefault(item.label, []).append(index)
                    copy_counts[item.label] = copy_counts.get(item.label, 0) + 1
                    if self._obs is not None:
                        self._obs.count("client.copies", path=endpoint.name)
                    endpoint.cancel.clear()
                remaining: Optional[float] = None
                if deadline_s is not None:
                    remaining = deadline_s - now()
                    if remaining <= 0.0:
                        # The end-to-end budget is spent: stop cleanly
                        # with a structured event instead of burning a
                        # request the proxy would refuse anyway.
                        with lock:
                            self._forget_copy(
                                copies_inflight, item.label, index
                            )
                            self.degradations.record(
                                kind="deadline-expired",
                                time=now(),
                                path_name=endpoint.name,
                                item_label=item.label,
                                detail=(
                                    f"{deadline_s}s deadline spent "
                                    "before transfer"
                                ),
                            )
                            failure.append(
                                TimeoutError(
                                    f"deadline {deadline_s}s expired"
                                )
                            )
                            work_available.notify_all()
                        return
                try:
                    size = self._transfer_one(
                        endpoint, method, host, item, upload_path,
                        remaining_s=remaining,
                    )
                except _Cancelled:
                    with lock:
                        self._forget_copy(copies_inflight, item.label, index)
                        policy.on_item_aborted(worker, item, now())
                    endpoint.connect()  # fresh connection after the drop
                    continue
                except (httpwire.WireError, OSError) as exc:
                    with lock:
                        self._forget_copy(copies_inflight, item.label, index)
                        fail_path(index, exc, item_label=item.label)
                        if item.label not in completed:
                            # Re-offer the orphaned item, exactly as the
                            # simulator's runner does after a path fault
                            # (policies re-queue idempotently).
                            policy.on_item_failed(worker, item, now())
                    endpoint.close()
                    return
                with lock:
                    self._forget_copy(copies_inflight, item.label, index)
                    bytes_by_path[endpoint.name] += size
                    duration = now() - scheduled_at[item.label]
                    policy.on_item_complete(worker, item, duration, now())
                    if item.label in completed:
                        wasted += size
                        if self._obs is not None:
                            self._obs.count(
                                "client.waste_bytes", amount=float(size)
                            )
                    else:
                        if self._obs is not None:
                            self._obs.count(
                                "client.items_completed", path=endpoint.name
                            )
                        completed[item.label] = ItemTiming(
                            label=item.label,
                            path_name=endpoint.name,
                            size_bytes=size,
                            started_at=scheduled_at[item.label],
                            completed_at=now(),
                            copies=copy_counts[item.label],
                        )
                        # Cancel losing copies still in flight elsewhere.
                        for other in copies_inflight.get(item.label, []):
                            self.endpoints[other].cancel.set()
                    worker.current_item = None
                    work_available.notify_all()
                    if len(completed) >= items_total:
                        return

        threads = [
            threading.Thread(
                target=worker_loop, args=(i,), name=f"3gol-{e.name}",
                daemon=True,
            )
            for i, e in enumerate(self.endpoints)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for endpoint in self.endpoints:
            endpoint.cancel.set()
            endpoint.close()
        if failure:
            raise RuntimeError(
                f"prototype transfer failed: {failure[0]!r}"
            ) from failure[0]
        if len(completed) < items_total:
            missing = sorted(
                item.label
                for item in transaction.items
                if item.label not in completed
            )
            raise TimeoutError(
                f"transaction incomplete after {timeout}s: missing {missing[:5]}"
            )
        total_time = max(r.completed_at for r in completed.values())
        return ThreadedTransferReport(
            total_time=total_time,
            records=completed,
            wasted_bytes=wasted,
            bytes_by_path=bytes_by_path,
        )

    @staticmethod
    def _forget_copy(
        copies: Dict[str, List[int]], label: str, index: int
    ) -> None:
        entries = copies.get(label, [])
        if index in entries:
            entries.remove(index)

    def _transfer_one(
        self,
        endpoint: _Endpoint,
        method: str,
        host: str,
        item: TransferItem,
        upload_path: str,
        remaining_s: Optional[float] = None,
    ) -> int:
        """One GET or POST over the endpoint's persistent connection.

        With a ``remaining_s`` deadline budget the request carries the
        budget in the deadline header (so downstream hops clamp to it)
        and this socket's own recv timeout shrinks to match.
        """
        sock = endpoint.sock
        assert sock is not None
        extra: Optional[Dict[str, str]] = None
        if remaining_s is not None:
            sock.settimeout(
                httpwire.clamp_timeout(endpoint.recv_timeout, remaining_s)
            )
            extra = {httpwire.DEADLINE_HEADER: f"{remaining_s:.3f}"}
        if method == "GET":
            request = httpwire.render_request(
                "GET", item.label, host, headers=extra
            )
        else:
            payload = (item.label.encode("ascii") + b"|") * (
                int(item.size_bytes) // (len(item.label) + 1) + 1
            )
            payload = payload[: int(item.size_bytes)]
            request = httpwire.render_request(
                "POST",
                f"{upload_path}/{item.label.strip('/')}",
                host,
                headers=extra,
                body=payload,
            )
        sock.sendall(request)
        status, body = _read_response_cancellable(sock, endpoint.cancel)
        if status != 200:
            raise httpwire.WireError(f"unexpected status {status}")
        return len(body) if method == "GET" else int(item.size_bytes)
