"""The loopback origin server.

A real threaded TCP server on 127.0.0.1 hosting a
:class:`~repro.web.hls.VideoAsset`'s playlists and segments (segment
payloads are deterministic pseudo-random bytes of the correct size) and
accepting multipart photo uploads. Equivalent to the paper's dedicated
web server with caching disabled.
"""

from __future__ import annotations

import contextlib
import socket
import threading
from typing import Dict, Optional, Tuple

from repro.proto import httpwire
from repro.proto.mobileproxy import ACCEPT_TICK_S
from repro.web.hls import VideoAsset, render_m3u8


def _segment_payload(uri: str, size: int) -> bytes:
    """Deterministic pseudo-content for a segment (repeating tag)."""
    tag = (uri.strip("/").replace("/", "_") + "|").encode("ascii")
    reps = size // len(tag) + 1
    return (tag * reps)[:size]


class LoopbackOrigin:
    """Threaded HTTP origin bound to 127.0.0.1 on an ephemeral port."""

    def __init__(self) -> None:
        self._playlists: Dict[str, bytes] = {}
        self._segments: Dict[str, int] = {}
        self.uploads: Dict[str, int] = {}
        self._uploads_lock = threading.Lock()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(64)
        self._server.settimeout(ACCEPT_TICK_S)
        self.host, self.port = self._server.getsockname()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def host_video(self, video: VideoAsset) -> None:
        """Publish a video's playlists and segments."""
        for playlist in video.playlists.values():
            self._playlists[playlist.playlist_uri] = render_m3u8(
                playlist
            ).encode("utf-8")
            for segment in playlist.segments:
                self._segments[segment.uri] = int(round(segment.size_bytes))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LoopbackOrigin":
        """Start accepting connections (daemon threads)."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="origin-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop the server and release the port."""
        self._running = False
        with contextlib.suppress(OSError):
            self._server.close()

    def __enter__(self) -> "LoopbackOrigin":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue  # tick: re-check the running flag
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        leftover = b""
        try:
            # Idle-bounded like every other server socket here (RL012):
            # a peer that connects and goes silent is reclaimed instead
            # of pinning a thread forever.
            conn.settimeout(httpwire.DEFAULT_IDLE_TIMEOUT)
            while True:
                head, leftover = httpwire.read_until_blank_line(
                    conn, leftover
                )
                first, headers = httpwire.parse_head(head)
                method, path, _ = (first.split(" ", 2) + ["", ""])[:3]
                length = int(headers.get("content-length", "0"))
                body = httpwire.read_body(conn, leftover, length)
                leftover = b""
                conn.sendall(self._respond(method, path, body))
        except (httpwire.WireError, OSError):
            pass
        finally:
            with contextlib.suppress(OSError):
                conn.close()

    def _respond(self, method: str, path: str, body: bytes) -> bytes:
        path = path.split("?", 1)[0]
        if method == "POST":
            # Idempotent store keyed by path: the 3GOL scheduler may
            # duplicate an upload in its endgame (at-least-once
            # delivery), and storing a named photo twice must be a no-op
            # — the same property real photo services provide.
            with self._uploads_lock:
                self.uploads[path] = len(body)
            return httpwire.render_response(200, "OK", b"stored")
        if method != "GET":
            return httpwire.render_response(405, "Method Not Allowed")
        playlist = self._playlists.get(path)
        if playlist is not None:
            return httpwire.render_response(
                200, "OK", playlist,
                content_type="application/vnd.apple.mpegurl",
            )
        size = self._segments.get(path)
        if size is not None:
            return httpwire.render_response(
                200, "OK", _segment_payload(path, size), content_type="video/mp2t"
            )
        return httpwire.render_response(404, "Not Found")

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the origin listens on."""
        return (self.host, self.port)
