"""Minimal HTTP/1.1 wire helpers shared by the prototype components.

Covers exactly what the 3GOL data path needs: request/status lines,
headers, Content-Length-framed bodies, and persistent connections. No
chunked encoding (the origin always knows its sizes), no TLS.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Tuple

MAX_HEADER_BYTES = 64 * 1024
RECV_CHUNK = 64 * 1024


class WireError(Exception):
    """Malformed or truncated HTTP traffic."""


def read_until_blank_line(sock: socket.socket, buffered: bytes = b"") -> Tuple[bytes, bytes]:
    """Read up to and including the header/body separator.

    Returns ``(head, leftover)`` where ``head`` ends with CRLFCRLF and
    ``leftover`` is any body bytes already read.
    """
    data = buffered
    while b"\r\n\r\n" not in data:
        if len(data) > MAX_HEADER_BYTES:
            raise WireError("header section too large")
        chunk = sock.recv(RECV_CHUNK)
        if not chunk:
            if not data:
                raise WireError("connection closed before request")
            raise WireError("connection closed mid-header")
        data += chunk
    head, _, leftover = data.partition(b"\r\n\r\n")
    return head + b"\r\n\r\n", leftover


def parse_head(head: bytes) -> Tuple[str, Dict[str, str]]:
    """Split a header block into its first line and a lowercase header map."""
    lines = head.decode("latin-1").split("\r\n")
    first = lines[0]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise WireError(f"malformed header line {line!r}")
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return first, headers


def read_body(
    sock: socket.socket, leftover: bytes, content_length: int
) -> bytes:
    """Read exactly ``content_length`` body bytes."""
    body = leftover
    while len(body) < content_length:
        chunk = sock.recv(RECV_CHUNK)
        if not chunk:
            raise WireError("connection closed mid-body")
        body += chunk
    if len(body) > content_length:
        raise WireError("more body bytes than Content-Length")
    return body


def render_request(
    method: str,
    path: str,
    host: str,
    headers: Optional[Dict[str, str]] = None,
    body: bytes = b"",
) -> bytes:
    """Serialise a request with Content-Length framing."""
    out = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    merged = {"Content-Length": str(len(body))} if body else {}
    if headers:
        merged.update(headers)
    for name, value in merged.items():
        out.append(f"{name}: {value}")
    out.append("Connection: keep-alive")
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body


def render_response(
    status: int,
    reason: str,
    body: bytes = b"",
    content_type: str = "application/octet-stream",
) -> bytes:
    """Serialise a response with Content-Length framing."""
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body


def read_response(sock: socket.socket) -> Tuple[int, Dict[str, str], bytes]:
    """Read one response; returns (status, headers, body)."""
    head, leftover = read_until_blank_line(sock)
    first, headers = parse_head(head)
    parts = first.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise WireError(f"malformed status line {first!r}")
    status = int(parts[1])
    length = int(headers.get("content-length", "0"))
    body = read_body(sock, leftover, length)
    return status, headers, body
