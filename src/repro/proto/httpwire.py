"""Minimal HTTP/1.1 wire helpers shared by the prototype components.

Covers exactly what the 3GOL data path needs: request/status lines,
headers, Content-Length-framed bodies, and persistent connections. No
chunked encoding (the origin always knows its sizes), no TLS.

Every parser here assumes a *hostile* peer: header sections are capped
(enforced after each recv, so one oversized chunk cannot blow past the
limit), bodies are bounded, Content-Length and status codes are parsed
strictly, and every read can carry a per-socket recv timeout so a
stalling peer raises :class:`~repro.proto.errors.StallError` instead of
hanging the caller forever. All failures are typed
:class:`~repro.proto.errors.ProtocolError` subclasses.
"""

from __future__ import annotations

import math
import socket
import time
from typing import Dict, Optional, Tuple

from repro.proto.errors import (
    FramingError,
    ProtocolError,
    StallError,
    WireError,
)

__all__ = [
    "DEADLINE_HEADER",
    "FramingError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADER_COUNT",
    "MIN_TIMEOUT_S",
    "ProtocolError",
    "StallError",
    "WireError",
    "clamp_timeout",
    "parse_content_length",
    "parse_deadline",
    "parse_head",
    "parse_status_line",
    "read_body",
    "read_response",
    "read_until_blank_line",
    "render_request",
    "render_response",
]

#: End-to-end deadline budget header: the requester's *remaining*
#: deadline in seconds at send time. Each hop clamps its per-read
#: timeouts to the remaining budget and rewrites the header with what
#: is left when it forwards, so a slow hop cannot spend a downstream
#: hop's time.
DEADLINE_HEADER = "x-3gol-deadline-s"

MAX_HEADER_BYTES = 64 * 1024
#: Upper bound on distinct header lines in one message.
MAX_HEADER_COUNT = 256
#: Upper bound on a Content-Length this stack will ever read: large
#: enough for any asset the prototype serves (whole-video downloads are
#: segmented), small enough that a lying peer cannot balloon memory.
MAX_BODY_BYTES = 256 * 1024 * 1024
RECV_CHUNK = 64 * 1024

#: Default per-socket recv timeout for reads *from an upstream peer we
#: initiated a request to* (a stalled origin or phone proxy).
DEFAULT_RECV_TIMEOUT = 30.0
#: Default bound on how long a server-side connection may sit idle
#: between requests before it is reclaimed.
DEFAULT_IDLE_TIMEOUT = 120.0

#: Floor for a deadline-clamped socket timeout: even a nearly spent
#: budget gets one short bounded read rather than a zero timeout
#: (socket semantics would treat 0 as non-blocking).
MIN_TIMEOUT_S = 0.05


def clamp_timeout(base: float, remaining_s: Optional[float]) -> float:
    """Per-read timeout bounded by a propagated deadline budget."""
    if remaining_s is None:
        return base
    return max(MIN_TIMEOUT_S, min(base, remaining_s))

class _ReadBudget:
    """Overall wall-clock bound across a multi-recv read.

    A per-recv timeout alone cannot stop a slow-loris peer: one byte
    every ``timeout - ε`` seconds resets the clock forever. The budget
    caps the *whole* read — each recv's timeout shrinks to what is
    left, and a spent budget raises :class:`StallError` just like a
    silent peer. ``None`` disables the bound (the prior behaviour).
    """

    def __init__(self, overall_timeout: Optional[float]) -> None:
        self._stop_at = (
            None
            if overall_timeout is None
            else time.monotonic() + overall_timeout
        )
        self.overall_timeout = overall_timeout

    def recv_timeout(
        self, base: Optional[float]
    ) -> Optional[float]:
        """The next recv's timeout; raises when the budget is spent."""
        if self._stop_at is None:
            return base
        remaining = self._stop_at - time.monotonic()
        if remaining <= 0.0:
            raise StallError(
                f"read exceeded its {self.overall_timeout}s budget"
            )
        if base is None:
            return max(MIN_TIMEOUT_S, remaining)
        return clamp_timeout(base, remaining)


#: Control characters never valid inside a header value (HTAB allowed).
_VALUE_CTL = frozenset(
    chr(c) for c in range(0x20) if chr(c) != "\t"
) | {"\x7f"}


def _recv(sock: socket.socket, timeout: Optional[float]) -> bytes:
    """One recv with stall translation.

    ``timeout`` (seconds) bounds this single read when given; ``None``
    leaves the socket's own timeout configuration alone. Either way an
    expired socket timeout surfaces as :class:`StallError` so callers
    handle a silent peer exactly like any other protocol failure.
    """
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        return sock.recv(RECV_CHUNK)
    except socket.timeout:
        bound = timeout if timeout is not None else sock.gettimeout()
        raise StallError(f"peer sent nothing for {bound}s") from None


def read_until_blank_line(
    sock: socket.socket,
    buffered: bytes = b"",
    max_header_bytes: int = MAX_HEADER_BYTES,
    timeout: Optional[float] = None,
    overall_timeout: Optional[float] = None,
) -> Tuple[bytes, bytes]:
    """Read up to and including the header/body separator.

    Returns ``(head, leftover)`` where ``head`` ends with CRLFCRLF and
    ``leftover`` is any body bytes already read. The header cap is
    enforced *after* every append: a peer that delivers one huge chunk
    trips the limit just like one that trickles. ``timeout`` bounds
    each recv; ``overall_timeout`` bounds the whole header read, so a
    slow-loris peer trickling a byte per recv-timeout still stalls out.
    """
    budget = _ReadBudget(overall_timeout)
    data = buffered
    while b"\r\n\r\n" not in data:
        if len(data) > max_header_bytes:
            raise WireError(
                f"header section exceeds {max_header_bytes} bytes"
            )
        chunk = _recv(sock, budget.recv_timeout(timeout))
        if not chunk:
            if not data:
                raise WireError("connection closed before request")
            raise WireError("connection closed mid-header")
        data += chunk
    head, _, leftover = data.partition(b"\r\n\r\n")
    if len(head) + 4 > max_header_bytes:
        raise WireError(f"header section exceeds {max_header_bytes} bytes")
    return head + b"\r\n\r\n", leftover


def parse_head(head: bytes) -> Tuple[str, Dict[str, str]]:
    """Split a header block into its first line and a lowercase header map.

    Rejects header names with whitespace or control characters, header
    values carrying CTLs (the header-injection vector), oversized header
    counts, and conflicting duplicate ``Content-Length`` lines.
    """
    lines = head.decode("latin-1").split("\r\n")
    first = lines[0]
    headers: Dict[str, str] = {}
    count = 0
    for line in lines[1:]:
        if not line:
            continue
        count += 1
        if count > MAX_HEADER_COUNT:
            raise WireError(f"more than {MAX_HEADER_COUNT} header lines")
        if ":" not in line:
            raise WireError(f"malformed header line {line!r}")
        name, _, value = line.partition(":")
        name = name.strip()
        if not name or any(c.isspace() or c in _VALUE_CTL for c in name):
            raise WireError(f"malformed header name {name!r}")
        value = value.strip()
        if any(c in _VALUE_CTL for c in value):
            raise WireError(
                f"control character in value of header {name!r}"
            )
        key = name.lower()
        if key == "content-length" and key in headers and (
            headers[key] != value
        ):
            raise FramingError(
                "conflicting duplicate Content-Length headers "
                f"({headers[key]!r} vs {value!r})"
            )
        headers[key] = value
    return first, headers


def parse_content_length(
    headers: Dict[str, str], max_body_bytes: int = MAX_BODY_BYTES
) -> int:
    """Strictly parse the (optional) Content-Length of a header map.

    Absent means 0. Anything but a plain run of digits — signs, spaces,
    floats, hex — is a framing lie, as is a length above
    ``max_body_bytes``.
    """
    raw = headers.get("content-length")
    if raw is None:
        return 0
    if not raw.isascii() or not raw.isdigit():
        raise FramingError(f"malformed Content-Length {raw!r}")
    # Bound the digit count before int(): CPython refuses conversions
    # past ~4300 digits with a bare ValueError, and any value this long
    # is a framing lie regardless (found by fuzzing, seed 0).
    if len(raw) > 19:
        raise FramingError(
            f"Content-Length has {len(raw)} digits ({raw[:24]!r}...)"
        )
    length = int(raw)
    if length > max_body_bytes:
        raise FramingError(
            f"Content-Length {length} exceeds the {max_body_bytes}-byte "
            "bound"
        )
    return length


def parse_deadline(headers: Dict[str, str]) -> Optional[float]:
    """Strictly parse the (optional) propagated deadline header.

    Absent means no deadline (``None``). A value that is not a finite
    float is a protocol lie from the peer, same as a malformed
    Content-Length. Zero and negative values are *valid* — they mean
    the budget is already spent and the hop should refuse the work.
    """
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise WireError(
            f"malformed {DEADLINE_HEADER} value {raw!r}"
        ) from None
    if not math.isfinite(value):
        raise WireError(
            f"non-finite {DEADLINE_HEADER} value {raw!r}"
        )
    return value


def parse_status_line(first: str) -> int:
    """Parse and validate an HTTP/1.x status line, returning the code."""
    parts = first.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise WireError(f"malformed status line {first!r}")
    code = parts[1]
    if len(code) != 3 or not code.isascii() or not code.isdigit():
        raise WireError(f"malformed status code {code!r}")
    status = int(code)
    if not 100 <= status <= 599:
        raise WireError(f"status code {status} out of range")
    return status


def read_body(
    sock: socket.socket,
    leftover: bytes,
    content_length: int,
    max_body_bytes: int = MAX_BODY_BYTES,
    timeout: Optional[float] = None,
    overall_timeout: Optional[float] = None,
) -> bytes:
    """Read exactly ``content_length`` body bytes.

    ``timeout`` bounds each recv; ``overall_timeout`` bounds the whole
    body read (the slow-loris defence, as in
    :func:`read_until_blank_line`).
    """
    if content_length < 0:
        raise FramingError(f"negative Content-Length {content_length}")
    if content_length > max_body_bytes:
        raise FramingError(
            f"Content-Length {content_length} exceeds the "
            f"{max_body_bytes}-byte bound"
        )
    budget = _ReadBudget(overall_timeout)
    body = leftover
    while len(body) < content_length:
        chunk = _recv(sock, budget.recv_timeout(timeout))
        if not chunk:
            raise WireError("connection closed mid-body")
        body += chunk
    if len(body) > content_length:
        raise FramingError("more body bytes than Content-Length")
    return body


def render_request(
    method: str,
    path: str,
    host: str,
    headers: Optional[Dict[str, str]] = None,
    body: bytes = b"",
) -> bytes:
    """Serialise a request with Content-Length framing."""
    out = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    merged = {"Content-Length": str(len(body))} if body else {}
    if headers:
        merged.update(headers)
    for name, value in merged.items():
        out.append(f"{name}: {value}")
    out.append("Connection: keep-alive")
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body


def render_response(
    status: int,
    reason: str,
    body: bytes = b"",
    content_type: str = "application/octet-stream",
) -> bytes:
    """Serialise a response with Content-Length framing."""
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1") + body


def read_response(
    sock: socket.socket,
    timeout: Optional[float] = None,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Tuple[int, Dict[str, str], bytes]:
    """Read one response; returns (status, headers, body)."""
    head, leftover = read_until_blank_line(sock, timeout=timeout)
    first, headers = parse_head(head)
    status = parse_status_line(first)
    length = parse_content_length(headers, max_body_bytes)
    body = read_body(
        sock, leftover, length, max_body_bytes=max_body_bytes,
        timeout=timeout,
    )
    return status, headers, body
