"""Loopback prototype: the 3GOL data plane over real TCP sockets.

The paper's prototype runs on rooted Android phones; the closest
executable equivalent here is a loopback deployment on 127.0.0.1:

* :class:`~repro.proto.origin.LoopbackOrigin` — a real threaded HTTP
  server hosting HLS playlists/segments and accepting multipart uploads
  (the §5 "dedicated well provisioned web server");
* :class:`~repro.proto.mobileproxy.MobileProxy` — the mobile component: a
  TCP proxy that pipes HTTP requests to the origin through a token-bucket
  shaper standing in for the phone's 3G interface;
* :class:`~repro.proto.client.PrototypeClient` — the client component:
  fetches and parses the real m3u8 over the (shaped) gateway path, then
  drives the *same scheduling policies as the simulator* over real
  threads and sockets.

The shapers (:mod:`repro.proto.shaping`) emulate the ADSL line and the 3G
channels; everything else — HTTP parsing, proxying, parallel scheduling,
duplicate aborts — is the genuine article.

Only the :mod:`repro.proto.errors` taxonomy is imported eagerly; the
prototype classes load on first attribute access (PEP 562). That keeps
the error types importable from the layers *below* the prototype (the
web parsers raise them) without a circular import through
:mod:`repro.proto.origin`, which itself builds on :mod:`repro.web`.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.proto.errors import (
    FramingError,
    MultipartError,
    PlaylistError,
    ProtocolError,
    StallError,
    WireError,
)

__all__ = [
    "FramingError",
    "LoopbackOrigin",
    "MobileProxy",
    "MultipartError",
    "PlaylistError",
    "ProtocolError",
    "PrototypeClient",
    "StallError",
    "ThreadedTransferReport",
    "TokenBucket",
    "WireError",
]

_LAZY = {
    "TokenBucket": "repro.proto.shaping",
    "LoopbackOrigin": "repro.proto.origin",
    "MobileProxy": "repro.proto.mobileproxy",
    "PrototypeClient": "repro.proto.client",
    "ThreadedTransferReport": "repro.proto.client",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY))
