"""Loopback prototype: the 3GOL data plane over real TCP sockets.

The paper's prototype runs on rooted Android phones; the closest
executable equivalent here is a loopback deployment on 127.0.0.1:

* :class:`~repro.proto.origin.LoopbackOrigin` — a real threaded HTTP
  server hosting HLS playlists/segments and accepting multipart uploads
  (the §5 "dedicated well provisioned web server");
* :class:`~repro.proto.mobileproxy.MobileProxy` — the mobile component: a
  TCP proxy that pipes HTTP requests to the origin through a token-bucket
  shaper standing in for the phone's 3G interface;
* :class:`~repro.proto.client.PrototypeClient` — the client component:
  fetches and parses the real m3u8 over the (shaped) gateway path, then
  drives the *same scheduling policies as the simulator* over real
  threads and sockets.

The shapers (:mod:`repro.proto.shaping`) emulate the ADSL line and the 3G
channels; everything else — HTTP parsing, proxying, parallel scheduling,
duplicate aborts — is the genuine article.
"""

from repro.proto.shaping import TokenBucket
from repro.proto.origin import LoopbackOrigin
from repro.proto.mobileproxy import MobileProxy
from repro.proto.client import PrototypeClient, ThreadedTransferReport

__all__ = [
    "TokenBucket",
    "LoopbackOrigin",
    "MobileProxy",
    "PrototypeClient",
    "ThreadedTransferReport",
]
